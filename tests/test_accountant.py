"""Unit tests for the pluggable (eps, delta) budget accountants."""

import pytest

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.privacy.accountant import (
    ApproxDPAccountant,
    PureDPAccountant,
    make_accountant,
)


class TestPureDPAccountant:
    def test_initial_state(self):
        accountant = PureDPAccountant(1.0)
        assert accountant.total_epsilon == 1.0
        assert accountant.total_delta == 0.0
        assert accountant.remaining_epsilon == 1.0
        assert accountant.spent_epsilon == 0.0

    def test_spend_accumulates(self):
        accountant = PureDPAccountant(1.0)
        accountant.spend(0.3)
        accountant.spend(0.2)
        assert accountant.spent_epsilon == pytest.approx(0.5)
        assert accountant.remaining_epsilon == pytest.approx(0.5)

    def test_overspend_raises_and_leaves_state(self):
        accountant = PureDPAccountant(0.5)
        accountant.spend(0.4)
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.2)
        assert accountant.spent_epsilon == pytest.approx(0.4)

    def test_exact_exhaustion_without_float_dust(self):
        # 3 * 0.1 != 0.3 in floats; the ledger must still read exactly 0.
        accountant = PureDPAccountant(0.3)
        for _ in range(3):
            accountant.spend(0.1)
        assert accountant.remaining_epsilon == 0.0
        assert accountant.spent_epsilon == 0.3
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(1e-6)

    def test_slack_overshoot_never_reads_above_total(self):
        # Regression: _fits admits a final spend up to remaining + slack,
        # and the committed sum can land a hair above the total (outside a
        # symmetric clamp window) — spent must clamp to the total, never
        # read above it, and the ledger must stay exhausted.
        accountant = PureDPAccountant(1.0)
        accountant.spend(0.5)
        accountant.spend(0.5 + 1e-12)
        assert accountant.spent_epsilon == 1.0
        assert accountant.remaining_epsilon == 0.0
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(1e-13)

    def test_exhaustion_slack_does_not_rearm(self):
        # Regression: the dust slack forgives float error on the spend that
        # *reaches* the total, but once spent == total every further spend
        # must fail — otherwise unbounded dust-sized releases pass while
        # the clamped ledger under-reports the true privacy loss.
        accountant = PureDPAccountant(1.0)
        accountant.spend(1.0)
        for _ in range(3):
            with pytest.raises(PrivacyBudgetError):
                accountant.spend(1e-13)
        assert accountant.spent_epsilon == 1.0
        assert not accountant.can_spend(1e-13)

    def test_delta_exhaustion_slack_does_not_rearm(self):
        accountant = ApproxDPAccountant(10.0, 1e-6)
        accountant.spend(0.1, 1e-6)
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.1, 1e-22)
        accountant.spend(0.1)  # epsilon-only still fine

    def test_spend_remaining_exactly(self):
        accountant = PureDPAccountant(1.0)
        accountant.spend(0.7)
        accountant.spend(accountant.remaining_epsilon)
        assert accountant.remaining_epsilon == 0.0

    def test_rejects_delta(self):
        accountant = PureDPAccountant(1.0)
        with pytest.raises(PrivacyBudgetError, match="pure eps-DP"):
            accountant.spend(0.1, delta=1e-6)
        assert accountant.spent_epsilon == 0.0
        assert not accountant.can_spend(0.1, delta=1e-6)

    def test_can_spend(self):
        accountant = PureDPAccountant(0.5)
        assert accountant.can_spend(0.5)
        accountant.spend(0.3)
        assert not accountant.can_spend(0.3)

    def test_rejects_nonpositive_epsilon(self):
        accountant = PureDPAccountant(1.0)
        with pytest.raises(ValidationError):
            accountant.spend(0.0)

    def test_can_spend_is_a_total_predicate(self):
        # Malformed costs answer False instead of raising: guard code like
        # `if accountant.can_spend(eps):` must never blow up.
        accountant = PureDPAccountant(1.0)
        assert not accountant.can_spend(0.0)
        assert not accountant.can_spend(-1.0)
        assert not accountant.can_spend(0.5, delta=-0.1)
        assert not accountant.can_spend(0.5, delta=1e-6)  # pure model

    def test_reset(self):
        accountant = PureDPAccountant(1.0)
        accountant.spend(0.9)
        accountant.reset()
        assert accountant.remaining_epsilon == 1.0


class TestSpendMany:
    def test_atomic_commit(self):
        accountant = PureDPAccountant(1.0)
        accountant.spend_many([(0.25, 0.0), (0.25, 0.0)])
        assert accountant.spent_epsilon == pytest.approx(0.5)

    def test_atomic_rejection_spends_nothing(self):
        accountant = PureDPAccountant(0.5)
        with pytest.raises(PrivacyBudgetError, match="batch of 3"):
            accountant.spend_many([(0.2, 0.0), (0.2, 0.0), (0.2, 0.0)])
        assert accountant.spent_epsilon == 0.0

    def test_invalid_member_rejects_whole_batch(self):
        accountant = ApproxDPAccountant(1.0, 1e-6)
        with pytest.raises(PrivacyBudgetError):
            accountant.spend_many([(0.1, 0.0), (0.1, 2.0)])  # delta >= 1
        assert accountant.spent_epsilon == 0.0
        assert accountant.spent_delta == 0.0

    def test_batch_exact_exhaustion(self):
        accountant = PureDPAccountant(0.3)
        accountant.spend_many([(0.1, 0.0)] * 3)
        assert accountant.remaining_epsilon == 0.0

    def test_empty_batch_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PureDPAccountant(1.0).spend_many([])

    def test_batch_matches_sequential_ledger_bitwise(self):
        # The serving batch path must leave the exact float state a loop of
        # spend() calls would (addition is not associative).
        costs = [(0.1, 0.0)] * 7 + [(0.05, 0.0), (0.2, 0.0)]
        batch = PureDPAccountant(1.0)
        batch.spend_many(costs)
        loop = PureDPAccountant(1.0)
        for cost in costs:
            loop.spend(*cost)
        assert batch.spent_epsilon == loop.spent_epsilon

    def test_batch_refuses_post_exhaustion_dust_like_the_loop(self):
        # A pre-summed admission would accept [total, dust] through the
        # float slack; sequential admission must refuse it exactly like a
        # loop of spend() calls (the exhaustion guard does not re-arm).
        batch = PureDPAccountant(1.0)
        with pytest.raises(PrivacyBudgetError):
            batch.spend_many([(1.0, 0.0), (1e-13, 0.0)])
        assert batch.spent_epsilon == 0.0  # all-or-nothing

        loop = PureDPAccountant(1.0)
        loop.spend(1.0)
        with pytest.raises(PrivacyBudgetError):
            loop.spend(1e-13)


class TestApproxDPAccountant:
    def test_tracks_both_coordinates(self):
        accountant = ApproxDPAccountant(1.0, 1e-5)
        accountant.spend(0.3, 1e-6)
        accountant.spend(0.2)  # pure release composes alongside
        assert accountant.spent_epsilon == pytest.approx(0.5)
        assert accountant.spent_delta == pytest.approx(1e-6)
        assert accountant.remaining_delta == pytest.approx(9e-6)

    def test_delta_exhaustion_blocks(self):
        accountant = ApproxDPAccountant(10.0, 1e-6)
        accountant.spend(0.1, 1e-6)
        assert accountant.remaining_delta == 0.0
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.1, 1e-9)
        # epsilon-only releases still fit
        accountant.spend(0.1)

    def test_eps_only_spend_leaves_tiny_delta_budget_intact(self):
        # A tiny total_delta must not be snapped to exhausted by
        # epsilon-only spends — the clamp only fires on the coordinate
        # actually spent on.
        accountant = ApproxDPAccountant(1.0, 1e-18)
        accountant.spend(0.1)
        assert accountant.spent_delta == 0.0
        accountant.spend(0.1, 1e-18)
        assert accountant.spent_delta == 1e-18
        assert accountant.remaining_delta == 0.0

    def test_partial_spend_of_tiny_delta_budget_not_snapped(self):
        # The delta slack is relative to the total, so spending 10% of a
        # delta budget below any absolute dust floor leaves the other 90%
        # genuinely spendable instead of reading exhausted.
        accountant = ApproxDPAccountant(1.0, 1e-16)
        accountant.spend(0.1, 1e-17)
        assert accountant.spent_delta == pytest.approx(1e-17)
        assert accountant.remaining_delta == pytest.approx(9e-17)
        for _ in range(9):
            accountant.spend(0.05, 1e-17)
        assert accountant.remaining_delta == 0.0
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.01, 1e-17)

    def test_requires_positive_total_delta(self):
        with pytest.raises(PrivacyBudgetError):
            ApproxDPAccountant(1.0, 0.0)

    def test_rejects_delta_ge_one(self):
        with pytest.raises(PrivacyBudgetError):
            ApproxDPAccountant(1.0, 1.0)
        accountant = ApproxDPAccountant(1.0, 1e-6)
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.1, 1.0)

    def test_repr(self):
        assert "ApproxDPAccountant" in repr(ApproxDPAccountant(1.0, 1e-6))


class TestMakeAccountant:
    def test_zero_delta_is_pure(self):
        assert isinstance(make_accountant(1.0), PureDPAccountant)
        assert make_accountant(1.0).name == "pure-dp"

    def test_positive_delta_is_approx(self):
        accountant = make_accountant(1.0, 1e-6)
        assert isinstance(accountant, ApproxDPAccountant)
        assert accountant.name == "approx-dp"
        assert accountant.total_delta == 1e-6

    def test_negative_delta_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            make_accountant(1.0, -1e-6)
