"""Edge cases and failure injection across the public API.

These tests feed every mechanism and the solver pathological-but-legal
inputs (single query, single cell, zero rows, huge magnitudes, duplicated
queries) and assert graceful, correct behaviour instead of crashes or
silent nonsense.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:PrivateQueryEngine.answer_workload is deprecated:DeprecationWarning"
)

from repro.core.alm import decompose_workload
from repro.core.lrm import LowRankMechanism
from repro.exceptions import DecompositionError, ValidationError
from repro.mechanisms.baselines import NoiseOnDataMechanism, NoiseOnResultsMechanism
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.wavelet import WaveletMechanism
from repro.workloads import Workload

FAST = {"max_outer": 15, "max_inner": 3, "nesterov_iters": 15, "stall_iters": 5}


class TestDegenerateWorkloads:
    def test_single_query_single_cell(self):
        w = Workload([[2.0]])
        for mech_cls in (NoiseOnDataMechanism, NoiseOnResultsMechanism,
                         WaveletMechanism, HierarchicalMechanism):
            mech = mech_cls().fit(w)
            answer = mech.answer(np.array([5.0]), 1.0, rng=0)
            assert answer.shape == (1,)
            assert np.isfinite(answer).all()

    def test_single_query_lrm(self):
        w = Workload([[1.0, 2.0, 3.0]])
        mech = LowRankMechanism(**FAST).fit(w)
        # Default ratio 1.2 over rank 1 -> ceil(1.2) = 2, clamped to the
        # single query row: extra columns in B beyond m never help.
        assert mech.effective_rank == 1
        assert np.isfinite(mech.answer(np.ones(3), 1.0, rng=0)).all()

    def test_workload_with_zero_rows(self):
        # A zero query is legal: its exact answer is 0 and stays 0-centred.
        w = Workload([[0.0, 0.0], [1.0, 1.0]])
        mech = NoiseOnDataMechanism().fit(w)
        answers = np.array([mech.answer(np.ones(2), 1.0, rng=i)[0] for i in range(500)])
        assert abs(answers.mean()) < 1.0

    def test_all_zero_workload_decomposition_fails_cleanly(self):
        with pytest.raises(DecompositionError, match="all-zero"):
            decompose_workload(np.zeros((3, 4)), **FAST)

    def test_duplicated_queries_are_rank_one(self):
        row = np.array([1.0, -1.0, 2.0, 0.0])
        w = Workload(np.tile(row, (6, 1)))
        assert w.rank == 1
        mech = LowRankMechanism(**FAST).fit(w)
        # One strategy query suffices; scale must beat NOD by ~m/stuff.
        nod = NoiseOnDataMechanism().fit(w)
        assert mech.expected_squared_error(1.0) < nod.expected_squared_error(1.0)

    def test_huge_magnitude_workload(self):
        rng = np.random.default_rng(0)
        w = Workload(rng.standard_normal((6, 12)) * 1e8)
        dec = decompose_workload(w.matrix, **FAST)
        assert np.isfinite(dec.scale)
        assert dec.residual_norm <= 1e-6 * np.linalg.norm(w.matrix)

    def test_tiny_magnitude_workload(self):
        rng = np.random.default_rng(1)
        w = Workload(rng.standard_normal((6, 12)) * 1e-8)
        dec = decompose_workload(w.matrix, **FAST)
        assert np.isfinite(dec.scale)
        assert dec.scale > 0

    def test_wide_single_row(self):
        w = Workload(np.ones((1, 64)))
        mech = LowRankMechanism(**FAST).fit(w)
        # A single sum query has optimal error 2/eps^2 (one Laplace draw).
        assert mech.expected_squared_error(1.0) <= 2.0 * 1.1

    def test_tall_workload_more_queries_than_cells(self):
        rng = np.random.default_rng(2)
        w = Workload(rng.standard_normal((20, 5)))
        mech = LowRankMechanism(**FAST).fit(w)
        assert mech.answer(np.ones(5), 1.0, rng=0).shape == (20,)


class TestNumericalRobustness:
    def test_negative_counts_are_legal_data(self):
        # The paper's records are real numbers; negative values must work.
        w = Workload(np.ones((2, 4)))
        mech = NoiseOnDataMechanism().fit(w)
        answer = mech.answer(np.array([-5.0, 3.0, -2.0, 1.0]), 1.0, rng=0)
        assert np.isfinite(answer).all()

    def test_epsilon_extremes(self):
        w = Workload(np.ones((2, 4)))
        mech = NoiseOnDataMechanism().fit(w)
        # Very large epsilon: noise nearly vanishes.
        answer = mech.answer(np.ones(4), 1e6, rng=0)
        assert np.allclose(answer, 4.0, atol=1e-3)
        # Very small epsilon: still finite.
        assert np.isfinite(mech.answer(np.ones(4), 1e-6, rng=0)).all()

    def test_non_contiguous_and_fortran_order_inputs(self):
        base = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        w = Workload(base)
        x = np.arange(8.0)[::2]  # non-contiguous view
        assert np.allclose(w.answer(x), base @ np.ascontiguousarray(x))

    def test_integer_inputs_coerced(self):
        w = Workload(np.array([[1, 0], [0, 1]]))
        assert w.matrix.dtype == np.float64
        answer = NoiseOnDataMechanism().fit(w).answer(np.array([1, 2]), 1.0, rng=0)
        assert answer.dtype == np.float64

    def test_rng_streams_independent_across_mechanisms(self):
        w = Workload(np.ones((2, 4)))
        a = NoiseOnDataMechanism().fit(w)
        b = NoiseOnDataMechanism().fit(w)
        shared = np.random.default_rng(0)
        first = a.answer(np.ones(4), 1.0, shared)
        second = b.answer(np.ones(4), 1.0, shared)
        # Same generator consumed sequentially: different draws.
        assert not np.allclose(first, second)


class TestPrivacyAccountingEdges:
    def test_engine_refuses_fit_cost_free_overspend(self):
        from repro.engine import PrivateQueryEngine
        from repro.exceptions import PrivacyBudgetError

        engine = PrivateQueryEngine(np.ones(8), total_budget=0.1, seed=0)
        w = Workload(np.ones((1, 8)))
        engine.prepare(w, mechanism="LM")  # free
        engine.answer_workload(w, epsilon=0.1, mechanism="LM")
        with pytest.raises(PrivacyBudgetError):
            engine.answer_workload(w, epsilon=0.01, mechanism="LM")

    def test_budget_not_spent_on_failed_fit(self):
        from repro.engine import PrivateQueryEngine

        engine = PrivateQueryEngine(np.ones(8), total_budget=1.0, seed=0)
        with pytest.raises(ValidationError):
            engine.answer_workload(Workload(np.ones((1, 4))), epsilon=0.5)
        assert engine.spent_budget == 0.0
