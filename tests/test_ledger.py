"""Durable budget ledger (repro.privacy.ledger): both backends, all
accountant models.

The load-bearing claims:

* replay is **bit-identical** — reopening a ledger rebuilds exactly the
  in-memory state (scalar sums and RDP curves compared to the last bit);
* a spend is all-or-nothing — admission failures and injected write
  faults leave the ledger exactly as it was;
* ``snapshot``/``restore`` journal durable rollbacks that are never
  resurrected by a later open, while other handles' interim spends
  survive;
* corruption is detected (checksums, sequence gaps), torn tails are
  repaired, lock contention surfaces as ``LedgerBusyError``.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import (
    LedgerBusyError,
    LedgerCorruptError,
    LedgerError,
    PrivacyBudgetError,
)
from repro.io.atomic import RetryPolicy
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import (
    DurableAccountant,
    JournalStore,
    SQLiteStore,
    _decode_record,
    _encode_record,
    inspect_ledger,
    open_ledger,
    open_store,
    recover_ledger,
)
from repro.testing.faults import FailPoint, InjectedFault

BACKENDS = ("journal", "sqlite")

# One cost schedule per model; values chosen to exercise float
# non-associativity (0.1 + 0.25 + 0.05 commits in a fixed order).
MODELS = {
    "pure": dict(total=1.0, total_delta=0.0, costs=[(0.1, 0.0), (0.25, 0.0), (0.05, 0.0)]),
    "basic": dict(total=1.0, total_delta=1e-5, costs=[(0.1, 1e-7), (0.25, 2e-7), (0.05, 0.0)]),
    "rdp": dict(total=1.0, total_delta=1e-5, costs=[(0.1, 1e-7), (0.25, 1e-7), (0.05, 1e-7)]),
}


def ledger_path(tmp_path, backend):
    return tmp_path / ("budget.db" if backend == "sqlite" else "budget.journal")


def fresh_accountant(model):
    spec = MODELS[model]
    return make_accountant(spec["total"], spec["total_delta"], model=model)


def states_equal(left, right):
    """Bit-exact ledger-state comparison (tuples of floats/bools/arrays)."""
    if type(left) is not type(right):
        return False
    if isinstance(left, tuple):
        return len(left) == len(right) and all(
            states_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, np.ndarray):
        return left.dtype == right.dtype and np.array_equal(left, right)
    return left == right


def reopened_state(path, model):
    """Ledger state after a fresh open (what a restarted process sees)."""
    acct = open_ledger(path, fresh_accountant(model))
    try:
        return acct._ledger_state()
    finally:
        acct.close()


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FailPoint.clear()
    yield
    FailPoint.clear()


# ---------------------------------------------------------------------- #
# Record format
# ---------------------------------------------------------------------- #
class TestRecordFormat:
    def test_roundtrip(self):
        text = _encode_record({"seq": 1, "op": "meta", "x": 0.1})
        record = _decode_record(text, 1)
        assert record["op"] == "meta"
        assert record["x"] == 0.1

    def test_float_repr_roundtrips_exactly(self):
        value = 0.1 + 0.2  # 0.30000000000000004
        text = _encode_record({"seq": 1, "op": "intent", "eps": value})
        assert _decode_record(text, 1)["eps"] == value

    def test_checksum_mismatch_raises(self):
        text = _encode_record({"seq": 1, "op": "meta", "x": 1.0})
        tampered = text.replace('"x":1.0', '"x":2.0')
        with pytest.raises(LedgerCorruptError):
            _decode_record(tampered, 1)

    def test_sequence_gap_raises(self):
        text = _encode_record({"seq": 3, "op": "meta"})
        with pytest.raises(LedgerCorruptError):
            _decode_record(text, 2)

    def test_garbage_raises(self):
        with pytest.raises(LedgerCorruptError):
            _decode_record("not json at all", 1)


# ---------------------------------------------------------------------- #
# Backend routing
# ---------------------------------------------------------------------- #
class TestOpenStore:
    def test_suffix_routes_to_sqlite(self, tmp_path):
        for name in ("a.db", "b.sqlite", "c.sqlite3"):
            store = open_store(tmp_path / name)
            assert isinstance(store, SQLiteStore)
            store.close()

    def test_default_routes_to_journal(self, tmp_path):
        store = open_store(tmp_path / "budget.journal")
        assert isinstance(store, JournalStore)

    def test_magic_routes_existing_sqlite_file(self, tmp_path):
        odd_name = tmp_path / "budget.ledger"
        store = open_store(odd_name, backend="sqlite")
        with store.transact():
            store.append({"op": "meta"})
        store.close()
        assert isinstance(open_store(odd_name), SQLiteStore)

    def test_unknown_backend_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            open_store(tmp_path / "x", backend="parchment")


# ---------------------------------------------------------------------- #
# Durable accounting: bit-identical replay
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("model", sorted(MODELS))
class TestDurableReplay:
    def test_replay_is_bit_identical(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        for cost in MODELS[model]["costs"]:
            acct.spend(*cost)
        live = acct._ledger_state()
        live_spent = (acct.spent_epsilon, acct.spent_delta)
        acct.close()

        # An in-memory control performing the same arithmetic in the same
        # order must land on the same bits: the ledger journals costs, not
        # states, and replays them through _commit_state in commit order.
        control = fresh_accountant(model)
        for cost in MODELS[model]["costs"]:
            control.spend(*cost)

        recovered = open_ledger(path, fresh_accountant(model))
        assert states_equal(recovered._ledger_state(), live)
        assert states_equal(recovered._ledger_state(), control._ledger_state())
        assert (recovered.spent_epsilon, recovered.spent_delta) == live_spent
        recovered.close()

    def test_spend_mirrors_inner_and_reports(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        inner = fresh_accountant(model)
        acct = open_ledger(path, inner)
        assert acct.name == inner.name  # audit label is the model's
        cost = MODELS[model]["costs"][0]
        acct.spend(*cost)
        assert acct.spent_epsilon == inner.spent_epsilon
        assert acct.remaining_epsilon == inner.remaining_epsilon
        assert acct.total_epsilon == MODELS[model]["total"]
        acct.close()

    def test_admission_failure_leaves_ledger_untouched(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        acct.spend(*MODELS[model]["costs"][0])
        before = acct._ledger_state()
        with pytest.raises(PrivacyBudgetError):
            acct.spend(MODELS[model]["total"] * 10.0, MODELS[model]["total_delta"])
        assert states_equal(acct._ledger_state(), before)
        acct.close()
        assert states_equal(reopened_state(path, model), before)

    def test_injected_write_fault_rolls_back_in_memory(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        acct.spend(*MODELS[model]["costs"][0])
        before = acct._ledger_state()
        FailPoint.error_at("ledger.commit.before_append")
        with pytest.raises(InjectedFault):
            acct.spend(*MODELS[model]["costs"][1])
        FailPoint.clear()
        # The failed spend is rolled back live and absent after reopen.
        assert states_equal(acct._ledger_state(), before)
        acct.close()
        assert states_equal(reopened_state(path, model), before)

    def test_meta_mismatch_on_reopen_raises(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        open_ledger(path, fresh_accountant(model)).close()
        spec = MODELS[model]
        other = make_accountant(spec["total"] * 2.0, spec["total_delta"], model=model)
        with pytest.raises(LedgerError):
            open_ledger(path, other)

    def test_spend_many_commits_as_one_transaction(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        realized = []
        acct.spend_many(MODELS[model]["costs"], realized_out=realized)
        assert len(realized) == len(MODELS[model]["costs"])
        live = acct._ledger_state()
        acct.close()
        summary = inspect_ledger(path)
        assert summary["committed"] == 1
        assert summary["costs"] == len(MODELS[model]["costs"])
        assert states_equal(reopened_state(path, model), live)


# ---------------------------------------------------------------------- #
# Cross-model guards / wrapper constraints
# ---------------------------------------------------------------------- #
class TestWrapperGuards:
    def test_refuses_double_wrap(self, tmp_path):
        acct = open_ledger(tmp_path / "a.journal", fresh_accountant("pure"))
        with pytest.raises(LedgerError):
            DurableAccountant(acct, open_store(tmp_path / "b.journal"))
        acct.close()

    def test_refuses_non_accountant(self, tmp_path):
        with pytest.raises(LedgerError):
            DurableAccountant(object(), open_store(tmp_path / "a.journal"))

    def test_refuses_pre_spent_accountant(self, tmp_path):
        inner = fresh_accountant("pure")
        inner.spend(0.1)
        with pytest.raises(LedgerError):
            open_ledger(tmp_path / "a.journal", inner)

    def test_model_mismatch_across_models_raises(self, tmp_path):
        path = tmp_path / "budget.journal"
        open_ledger(path, fresh_accountant("pure")).close()
        with pytest.raises(LedgerError):
            open_ledger(path, make_accountant(1.0, 1e-5, model="basic"))


# ---------------------------------------------------------------------- #
# Exact exhaustion
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestExactExhaustion:
    def test_twenty_nickels_drain_exactly(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, make_accountant(1.0, 0.0, model="pure"))
        for _ in range(20):
            acct.spend(0.05)
        assert acct.spent_epsilon == 1.0  # float dust clamped at the boundary
        assert acct.remaining_epsilon == 0.0
        with pytest.raises(PrivacyBudgetError):
            acct.spend(0.05)
        acct.close()
        recovered = open_ledger(path, make_accountant(1.0, 0.0, model="pure"))
        assert recovered.spent_epsilon == 1.0
        with pytest.raises(PrivacyBudgetError):
            recovered.spend(0.05)
        recovered.close()


# ---------------------------------------------------------------------- #
# snapshot / restore (durable rollback)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestSnapshotRestore:
    def test_restore_excises_spend_many_durably(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        keep = acct._ledger_state()
        token = acct.snapshot()
        realized = []
        acct.spend_many([(0.2, 0.0), (0.05, 0.0)], realized_out=realized)
        acct.restore(token)
        assert states_equal(acct._ledger_state(), keep)
        acct.close()
        # Rolled-back transactions are excised from replay forever — a
        # fresh open must NOT resurrect them.
        assert states_equal(reopened_state(path, "pure"), keep)
        summary = inspect_ledger(path)
        assert summary["rolled_back"] == 1
        assert summary["spent_epsilon"] == 0.1

    def test_interleaved_snapshots_roll_back_to_the_right_marker(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        outer = acct.snapshot()
        acct.spend(0.2)
        inner = acct.snapshot()
        acct.spend_many([(0.05, 0.0)])
        acct.restore(inner)  # drops only the 0.05 batch
        assert acct.spent_epsilon == 0.1 + 0.2
        acct.spend(0.025)
        acct.restore(outer)  # drops 0.2 and 0.025
        assert acct.spent_epsilon == 0.1
        acct.close()
        recovered = open_ledger(path, fresh_accountant("pure"))
        assert recovered.spent_epsilon == 0.1
        recovered.close()

    def test_restore_preserves_other_handles_interim_spends(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        mine = open_ledger(path, fresh_accountant("pure"))
        mine.spend(0.1)
        token = mine.snapshot()
        mine.spend(0.2)
        other = open_ledger(path, fresh_accountant("pure"))
        other.spend(0.05)  # another handle spends between snapshot and restore
        other.close()
        mine.restore(token)
        # My 0.2 is gone; the other handle's 0.05 survives.
        assert mine.spent_epsilon == 0.1 + 0.05
        mine.close()
        summary = inspect_ledger(path)
        assert summary["spent_epsilon"] == 0.1 + 0.05
        assert summary["rolled_back"] == 1

    def test_restore_with_foreign_token_raises(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        with pytest.raises(LedgerError):
            acct.restore("not a snapshot token")
        acct.close()

    def test_reset_is_durable(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.4)
        acct.reset()
        assert acct.spent_epsilon == 0.0
        acct.close()
        recovered = open_ledger(path, fresh_accountant("pure"))
        assert recovered.spent_epsilon == 0.0
        recovered.close()


# ---------------------------------------------------------------------- #
# Corruption, torn tails, contention
# ---------------------------------------------------------------------- #
class TestJournalIntegrity:
    def test_mid_stream_corruption_raises(self, tmp_path):
        path = tmp_path / "budget.journal"
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        acct.spend(0.2)
        acct.close()
        lines = path.read_bytes().split(b"\n")
        lines[1] = lines[1].replace(b"intent", b"lntent", 1)
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(LedgerCorruptError):
            open_ledger(path, fresh_accountant("pure"))

    def test_torn_tail_is_tolerated_and_repaired(self, tmp_path):
        path = tmp_path / "budget.journal"
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        live = acct._ledger_state()
        acct.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq":99,"op":"intent","truncated')  # no newline
        # Lock-free inspect reports the torn bytes without raising.
        summary = inspect_ledger(path)
        assert summary["torn_tail_bytes"] > 0
        assert summary["spent_epsilon"] == 0.1
        # The next locked open repairs the tail in place.
        recovered = open_ledger(path, fresh_accountant("pure"))
        assert states_equal(recovered._ledger_state(), live)
        recovered.close()
        assert inspect_ledger(path)["torn_tail_bytes"] == 0
        assert not path.read_bytes().endswith(b"truncated")

    def test_missing_meta_header_raises(self, tmp_path):
        path = tmp_path / "budget.journal"
        store = JournalStore(path)
        with store.transact():
            store.append({"op": "commit", "txn": "x"})
        with pytest.raises(LedgerCorruptError):
            open_ledger(path, fresh_accountant("pure"))


@pytest.mark.parametrize("backend", BACKENDS)
class TestContention:
    def test_held_lock_raises_busy_after_bounded_retry(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        open_ledger(path, fresh_accountant("pure")).close()
        retry = RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002)
        holder = open_store(path, retry=retry)
        contender = open_store(path, retry=retry)
        with holder.transact():
            with pytest.raises(LedgerBusyError):
                with contender.transact():
                    pass  # pragma: no cover
        holder.close()
        contender.close()

    def test_lock_released_after_transaction(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        open_ledger(path, fresh_accountant("pure")).close()
        first = open_store(path)
        second = open_store(path)
        with first.transact():
            pass
        with second.transact():
            pass  # must not raise: the first transaction released the lock
        first.close()
        second.close()


# ---------------------------------------------------------------------- #
# Inspection / recovery / CLI
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestInspectRecover:
    def test_inspect_summary_fields(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        acct.spend(0.25)
        acct.close()
        summary = inspect_ledger(path)
        assert summary["backend"] == backend
        assert summary["model"] == "pure-dp"
        assert summary["committed"] == 2
        assert summary["costs"] == 2
        assert summary["dangling_intents"] == []
        assert summary["spent_epsilon"] == 0.1 + 0.25
        assert summary["remaining_epsilon"] == 1.0 - (0.1 + 0.25)

    def test_recover_drops_dangling_intent(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        acct.close()
        # A crashed writer's trace: an intent with no commit.
        store = open_store(path)
        with store.transact():
            store.append({"op": "intent", "txn": "dead-beef", "costs": [[0.5, 0.0]]})
        store.close()
        before = inspect_ledger(path)
        assert before["dangling_intents"] == ["dead-beef"]
        assert before["spent_epsilon"] == 0.1  # never replayed
        after = recover_ledger(path)
        assert after["dangling_intents"] == []
        assert after["spent_epsilon"] == 0.1
        # And the compacted ledger still replays identically.
        recovered = open_ledger(path, fresh_accountant("pure"))
        assert recovered.spent_epsilon == 0.1
        recovered.close()

    def test_recover_flattens_rollbacks(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        token = acct.snapshot()
        acct.spend(0.2)
        acct.restore(token)
        acct.close()
        summary = recover_ledger(path)
        assert summary["rolled_back"] == 0  # excised records are gone
        assert summary["spent_epsilon"] == 0.1

    def test_inspect_missing_ledger_raises(self, tmp_path, backend):
        with pytest.raises(LedgerError):
            inspect_ledger(ledger_path(tmp_path, backend))


class TestLedgerCLI:
    def _spend_some(self, path):
        acct = open_ledger(path, fresh_accountant("pure"))
        acct.spend(0.1)
        acct.close()

    def test_inspect_output(self, tmp_path, capsys):
        import io as _io

        path = tmp_path / "budget.journal"
        self._spend_some(path)
        out = _io.StringIO()
        assert cli_main(["ledger", "inspect", "--ledger", str(path)], out=out) == 0
        text = out.getvalue()
        assert "journal backend" in text
        assert "spent_epsilon=0.1" in text

    def test_recover_output(self, tmp_path):
        import io as _io

        path = tmp_path / "budget.db"
        self._spend_some(path)
        out = _io.StringIO()
        assert cli_main(["ledger", "recover", "--ledger", str(path)], out=out) == 0
        assert "recovered" in out.getvalue()

    def test_missing_action_or_path_exit_2(self, tmp_path):
        import io as _io

        out = _io.StringIO()
        assert cli_main(["ledger", "--ledger", "x"], out=out) == 2
        out = _io.StringIO()
        assert cli_main(["ledger", "inspect"], out=out) == 2


# ---------------------------------------------------------------------- #
# Engine integration
# ---------------------------------------------------------------------- #
class TestEngineLedger:
    def _engine(self, path, **kwargs):
        from repro.engine import PrivateQueryEngine

        return PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=0, ledger_path=path, **kwargs
        )

    def test_spends_survive_reopen(self, tmp_path):
        from repro.workloads import wrange

        path = tmp_path / "budget.journal"
        engine = self._engine(path)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        release = engine.execute(plan, epsilon=0.2)
        assert release.metadata["accountant"] == "pure-dp"
        assert release.metadata["realized"] == {"epsilon": 0.2, "delta": 0.0}
        reopened = self._engine(path)
        assert reopened.accountant.spent_epsilon == 0.2

    def test_execute_many_rollback_is_durable(self, tmp_path, monkeypatch):
        from repro.workloads import wrange

        path = tmp_path / "budget.journal"
        engine = self._engine(path)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        engine.execute(plan, epsilon=0.1)

        def explode(*args, **kwargs):
            raise RuntimeError("mid-batch failure")

        monkeypatch.setattr(engine, "_produce_batch", explode, raising=True)
        with pytest.raises(RuntimeError):
            engine.execute_many([(plan, 0.2), (plan, 0.2)])
        # The batch charge was rolled back live and durably.
        assert engine.accountant.spent_epsilon == 0.1
        assert self._engine(path).accountant.spent_epsilon == 0.1
