"""Unit tests for the ALM workload decomposition (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.alm import (
    Decomposition,
    choose_rank,
    decompose_workload,
    svd_warm_start,
)
from repro.exceptions import DecompositionError, ValidationError
from repro.privacy.sensitivity import l1_sensitivity
from repro.workloads import wrelated

FAST = {"max_outer": 25, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}


class TestChooseRank:
    def test_explicit_rank_wins(self):
        assert choose_rank(np.eye(8), rank=3) == 3

    def test_default_uses_ratio(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((10, 5)) @ rng.standard_normal((5, 20))
        assert choose_rank(w, rank_ratio=1.2) == 6  # ceil(1.2 * 5)

    def test_clamped_to_dimensions(self):
        assert choose_rank(np.eye(4), rank=100) == 4

    def test_minimum_one(self):
        w = np.zeros((3, 3))
        w[0, 0] = 1.0
        assert choose_rank(w, rank_ratio=0.1) >= 1


class TestSvdWarmStart:
    def test_shapes(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((6, 10))
        b, l = svd_warm_start(w, 8)
        assert b.shape == (6, 8)
        assert l.shape == (8, 10)

    def test_feasible(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((5, 12))
        _, l = svd_warm_start(w, 5)
        assert np.all(np.abs(l).sum(axis=0) <= 1 + 1e-9)

    def test_reconstructs_w_when_rank_sufficient(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((6, 3)) @ rng.standard_normal((3, 9))
        b, l = svd_warm_start(w, 3)
        assert np.allclose(b @ l, w, atol=1e-8)

    def test_rows_beyond_svd_factors_small(self):
        # A 4 x 6 matrix has at most 4 SVD factors; row 5 is random padding.
        rng = np.random.default_rng(4)
        w = rng.standard_normal((4, 2)) @ rng.standard_normal((2, 6))
        _, l = svd_warm_start(w, 5)
        assert np.abs(l[4:]).max() < 1e-2


class TestDecomposeWorkload:
    def test_returns_decomposition(self):
        w = wrelated(10, 20, s=3, seed=0).matrix
        dec = decompose_workload(w, **FAST)
        assert isinstance(dec, Decomposition)

    def test_product_close_to_w(self):
        w = wrelated(10, 20, s=3, seed=0).matrix
        dec = decompose_workload(w, **FAST)
        assert dec.residual_norm <= 1e-6 * np.linalg.norm(w)

    def test_l_feasible(self):
        w = wrelated(10, 20, s=3, seed=0).matrix
        dec = decompose_workload(w, **FAST)
        assert np.all(np.abs(dec.l).sum(axis=0) <= 1 + 1e-8)

    def test_sensitivity_at_boundary(self):
        # The Lemma-2 rescaling puts the max column exactly on the boundary.
        w = wrelated(10, 20, s=3, seed=0).matrix
        dec = decompose_workload(w, **FAST)
        assert dec.sensitivity == pytest.approx(1.0, abs=1e-6)

    def test_beats_noise_on_data_in_favorable_regime(self):
        # Low rank, wide domain: LRM must beat the trivial B=W, L=I.
        wl = wrelated(16, 256, s=3, seed=1)
        dec = decompose_workload(wl.matrix, **FAST)
        assert dec.expected_noise_error(1.0) < 2 * wl.frobenius_squared

    def test_rank_parameter_respected(self):
        w = wrelated(10, 20, s=3, seed=0).matrix
        dec = decompose_workload(w, rank=5, **FAST)
        assert dec.rank == 5

    def test_rank_below_workload_rank_leaves_residual(self):
        w = wrelated(10, 30, s=6, seed=2).matrix
        dec = decompose_workload(w, rank=2, **FAST)
        assert dec.residual_norm > 1e-3 * np.linalg.norm(w)

    def test_history_populated(self):
        w = wrelated(8, 16, s=2, seed=3).matrix
        dec = decompose_workload(w, **FAST)
        assert len(dec.history) >= 1
        assert {"tau", "objective", "beta"} <= set(dec.history[0])

    def test_expected_noise_error_formula(self):
        w = wrelated(8, 16, s=2, seed=3).matrix
        dec = decompose_workload(w, **FAST)
        expected = 2 * np.sum(dec.b**2) * l1_sensitivity(dec.l) ** 2
        assert dec.expected_noise_error(1.0) == pytest.approx(expected)

    def test_error_scales_with_epsilon(self):
        w = wrelated(8, 16, s=2, seed=3).matrix
        dec = decompose_workload(w, **FAST)
        assert dec.expected_noise_error(0.1) == pytest.approx(100 * dec.expected_noise_error(1.0))

    def test_zero_workload_raises(self):
        with pytest.raises(DecompositionError):
            decompose_workload(np.zeros((3, 3)))

    def test_gamma_absolute_mode(self):
        w = wrelated(8, 16, s=2, seed=4).matrix
        dec = decompose_workload(w, gamma=0.5, gamma_is_relative=False, **FAST)
        assert dec.residual_norm <= 0.5 + 1e-9

    def test_invalid_gamma(self):
        with pytest.raises(ValidationError):
            decompose_workload(np.eye(3), gamma=0.0)

    def test_deterministic(self):
        w = wrelated(8, 16, s=2, seed=5).matrix
        a = decompose_workload(w, seed=1, **FAST)
        b = decompose_workload(w, seed=1, **FAST)
        assert np.allclose(a.b, b.b)
        assert np.allclose(a.l, b.l)

    def test_reconstruction_method(self):
        w = wrelated(6, 12, s=2, seed=6).matrix
        dec = decompose_workload(w, **FAST)
        assert np.allclose(dec.reconstruction(), dec.b @ dec.l)

    def test_identity_workload(self):
        # W = I has rank n; decomposition should roughly recover NOD quality.
        n = 16
        dec = decompose_workload(np.eye(n), **FAST)
        nod_error = 2.0 * n
        assert dec.expected_noise_error(1.0) <= nod_error * 3.0

    def test_scale_invariance(self):
        # Decomposing c*W scales the error objective by c^2 (the solver
        # normalises internally; floating-point path differences allow a
        # small relative drift in the solution found).
        w = wrelated(8, 16, s=2, seed=7).matrix
        a = decompose_workload(w, seed=1, **FAST)
        b = decompose_workload(10 * w, seed=1, **FAST)
        assert b.expected_noise_error(1.0) == pytest.approx(
            100 * a.expected_noise_error(1.0), rel=0.15
        )

    def test_exact_closure_guards_ill_conditioned_g(self):
        # An L whose G = L V is near-singular (sigma_min barely above the
        # rank tolerance) must not be reported as an exact closure: the
        # computed pseudo-inverse leaves an O(eps * kappa) defect that the
        # returned residual has to reflect (the historical dense check did).
        from repro.core.alm import _exact_closure, _thin_svd

        rng = np.random.default_rng(0)
        k = 5
        w = rng.standard_normal((20, k)) @ rng.standard_normal((k, 30))
        spectral = _thin_svd(w)
        q1, _ = np.linalg.qr(rng.standard_normal((k, k)))
        q2, _ = np.linalg.qr(rng.standard_normal((k, k)))
        g_bad = q1 @ np.diag([1.0, 1.0, 1.0, 1.0, 1e-13]) @ q2
        closed = _exact_closure(w, g_bad @ spectral.vt, spectral)
        if closed is not None:
            b, l_exact, tau = closed
            true_tau = float(np.linalg.norm(w - b @ l_exact))
            assert tau >= 0.5 * true_tau
            assert tau > 1e-4 * np.linalg.norm(w)  # nowhere near "exact"
        # A well-conditioned G still closes to the spectral tail.
        g_ok = q1 @ np.diag([1.0, 0.8, 0.5, 0.3, 0.2]) @ q2
        b, l_exact, tau = _exact_closure(w, g_ok @ spectral.vt, spectral)
        assert tau <= 1e-10 * np.linalg.norm(w)
        assert np.linalg.norm(w - b @ l_exact) <= 1e-10 * np.linalg.norm(w)

    def test_single_dense_svd_per_call(self):
        # The shared spectral cache: exactly ONE dense SVD of W per
        # decompose_workload call (closure pseudo-inverses factor small
        # r x k matrices, never W itself).
        w = wrelated(10, 20, s=3, seed=0).matrix
        calls = {"w_sized": 0}
        original_svd = np.linalg.svd

        def counting_svd(matrix, *args, **kwargs):
            if getattr(matrix, "shape", None) == w.shape:
                calls["w_sized"] += 1
            return original_svd(matrix, *args, **kwargs)

        try:
            np.linalg.svd = counting_svd
            decompose_workload(w, **FAST)
        finally:
            np.linalg.svd = original_svd
        assert calls["w_sized"] == 1

    def test_no_dense_svd_when_cache_provided(self):
        w = wrelated(10, 20, s=3, seed=0).matrix
        svd = np.linalg.svd(w, full_matrices=False)
        calls = {"w_sized": 0}
        original_svd = np.linalg.svd

        def counting_svd(matrix, *args, **kwargs):
            if getattr(matrix, "shape", None) == w.shape:
                calls["w_sized"] += 1
            return original_svd(matrix, *args, **kwargs)

        try:
            np.linalg.svd = counting_svd
            decompose_workload(w, svd=svd, **FAST)
        finally:
            np.linalg.svd = original_svd
        assert calls["w_sized"] == 0

    def test_cache_matches_no_cache(self):
        # use_cache=False recomputes every factorization independently; the
        # results must agree with the cached single-SVD path.
        for seed in (0, 3):
            w = wrelated(12, 24, s=4, seed=seed).matrix
            cached = decompose_workload(w, seed=1, use_cache=True, **FAST)
            uncached = decompose_workload(w, seed=1, use_cache=False, **FAST)
            assert cached.objective == pytest.approx(uncached.objective, rel=1e-6)
            assert cached.residual_norm == pytest.approx(
                uncached.residual_norm, abs=1e-8 * np.linalg.norm(w)
            )
            assert np.allclose(cached.b, uncached.b, atol=1e-6)
            assert np.allclose(cached.l, uncached.l, atol=1e-6)

    def test_precomputed_svd_accepted_and_equivalent(self):
        # A caller-provided thin SVD of the *unnormalised* W must yield a
        # decomposition of the same quality. (Not bit-identical: scaling
        # the cached sigma by 1/||W|| differs from factoring W/||W|| in the
        # last ulp, which the bi-convex trajectory can amplify; the solver
        # contract is solution quality, not trajectory.)
        w = wrelated(12, 24, s=4, seed=5).matrix
        internal = decompose_workload(w, seed=1, **FAST)
        external = decompose_workload(
            w, seed=1, svd=np.linalg.svd(w, full_matrices=False), **FAST
        )
        assert external.objective == pytest.approx(internal.objective, rel=0.05)
        assert external.residual_norm <= 1e-6 * np.linalg.norm(w)
        assert np.all(np.abs(external.l).sum(axis=0) <= 1 + 1e-8)

    def test_perf_counters_populated(self):
        w = wrelated(8, 16, s=2, seed=3).matrix
        dec = decompose_workload(w, **FAST)
        assert {"spectral", "init", "phase1", "refine", "total"} <= set(dec.perf)
        for entry in dec.perf.values():
            assert entry["seconds"] >= 0.0
            assert entry["flops"] >= 0.0
        assert dec.perf["total"]["seconds"] > 0.0
        # Every phase-1 history entry carries wall-clock + FLOP-proxy keys.
        for entry in dec.history:
            assert "elapsed" in entry and "flops" in entry

    def test_restarts_never_worse(self):
        w = np.array(
            [
                [1.0, 1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
            ]
        )
        single = decompose_workload(w, rank=2, seed=0, **FAST)
        multi = decompose_workload(w, rank=2, seed=0, restarts=4, **FAST)
        assert multi.expected_noise_error(1.0) <= single.expected_noise_error(1.0) + 1e-9
