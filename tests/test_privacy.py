"""Unit tests for the privacy substrate: noise, sensitivity, budgets."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.privacy.budget import PrivacyBudget, compose_sequential, split_budget
from repro.privacy.noise import (
    expected_squared_noise,
    laplace_noise,
    laplace_scale,
    laplace_variance,
)
from repro.privacy.sensitivity import column_l1_norms, l1_sensitivity, scale_to_sensitivity


class TestLaplaceScale:
    def test_value(self):
        assert laplace_scale(2.0, 0.5) == pytest.approx(4.0)

    def test_rejects_zero_epsilon(self):
        with pytest.raises(ValidationError):
            laplace_scale(1.0, 0.0)

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(ValidationError):
            laplace_scale(-1.0, 1.0)


class TestLaplaceVariance:
    def test_value(self):
        assert laplace_variance(3.0) == pytest.approx(18.0)


class TestLaplaceNoise:
    def test_shape_int(self):
        assert laplace_noise(5, 1.0, 1.0, rng=0).shape == (5,)

    def test_shape_tuple(self):
        assert laplace_noise((2, 3), 1.0, 1.0, rng=0).shape == (2, 3)

    def test_deterministic_with_seed(self):
        assert np.array_equal(laplace_noise(4, 1.0, 1.0, rng=7), laplace_noise(4, 1.0, 1.0, rng=7))

    def test_empirical_variance(self):
        samples = laplace_noise(200_000, 2.0, 0.5, rng=1)
        # scale = 4, variance = 32
        assert np.var(samples) == pytest.approx(32.0, rel=0.05)

    def test_zero_mean(self):
        samples = laplace_noise(200_000, 1.0, 1.0, rng=2)
        assert abs(np.mean(samples)) < 0.02

    def test_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            laplace_noise(0, 1.0, 1.0)


class TestExpectedSquaredNoise:
    def test_formula(self):
        # 2 * count * (Delta/eps)^2
        assert expected_squared_noise(10, 2.0, 0.5) == pytest.approx(2 * 10 * 16.0)

    def test_matches_empirical(self):
        expected = expected_squared_noise(1, 1.0, 1.0)
        samples = laplace_noise(300_000, 1.0, 1.0, rng=3)
        assert np.mean(samples**2) == pytest.approx(expected, rel=0.05)


class TestSensitivity:
    def test_column_norms(self):
        matrix = np.array([[1.0, -2.0], [3.0, 0.5]])
        assert np.allclose(column_l1_norms(matrix), [4.0, 2.5])

    def test_l1_sensitivity(self):
        assert l1_sensitivity(np.array([[1.0, -2.0], [3.0, 0.5]])) == pytest.approx(4.0)

    def test_zero_matrix(self):
        assert l1_sensitivity(np.zeros((2, 2))) == 0.0

    def test_sparse_input(self):
        import scipy.sparse as sp

        matrix = sp.csr_matrix(np.array([[1.0, -2.0], [3.0, 0.5]]))
        assert l1_sensitivity(matrix) == pytest.approx(4.0)

    def test_intro_example(self):
        # Section 1: {q1, q2, q3} with q1 = q2 + q3 has sensitivity 2.
        w = np.array(
            [
                [1.0, 1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
            ]
        )
        assert l1_sensitivity(w) == 2.0


class TestScaleToSensitivity:
    def test_product_preserved(self):
        rng = np.random.default_rng(0)
        b = rng.standard_normal((4, 2))
        l = rng.standard_normal((2, 5))
        b2, l2 = scale_to_sensitivity(b, l)
        assert np.allclose(b @ l, b2 @ l2)

    def test_target_reached(self):
        rng = np.random.default_rng(1)
        b = rng.standard_normal((4, 2))
        l = rng.standard_normal((2, 5)) * 3
        _, l2 = scale_to_sensitivity(b, l, target=1.0)
        assert l1_sensitivity(l2) == pytest.approx(1.0)

    def test_error_objective_invariant(self):
        # Lemma 2: Phi * Delta^2 unchanged by rescaling.
        rng = np.random.default_rng(2)
        b = rng.standard_normal((4, 3))
        l = rng.standard_normal((3, 6))
        before = np.sum(b**2) * l1_sensitivity(l) ** 2
        b2, l2 = scale_to_sensitivity(b, l)
        after = np.sum(b2**2) * l1_sensitivity(l2) ** 2
        assert after == pytest.approx(before)

    def test_zero_l_raises(self):
        with pytest.raises(ValidationError):
            scale_to_sensitivity(np.ones((2, 2)), np.zeros((2, 2)))


class TestPrivacyBudget:
    def test_initial_state(self):
        budget = PrivacyBudget(1.0)
        assert budget.remaining == 1.0
        assert budget.spent == 0.0

    def test_spend(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.3)
        assert budget.remaining == pytest.approx(0.7)

    def test_overspend_raises(self):
        budget = PrivacyBudget(0.5)
        with pytest.raises(PrivacyBudgetError):
            budget.spend(0.6)

    def test_sequential_spends_accumulate(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.4)
        budget.spend(0.4)
        with pytest.raises(PrivacyBudgetError):
            budget.spend(0.4)

    def test_can_spend(self):
        budget = PrivacyBudget(1.0)
        assert budget.can_spend(1.0)
        budget.spend(0.5)
        assert not budget.can_spend(0.6)

    def test_spend_fraction(self):
        budget = PrivacyBudget(1.0)
        assert budget.spend_fraction(0.5) == pytest.approx(0.5)
        assert budget.spend_fraction(0.5) == pytest.approx(0.25)

    def test_spend_fraction_rejects_bad(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0).spend_fraction(1.5)

    def test_reset(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.9)
        budget.reset()
        assert budget.remaining == 1.0

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValidationError):
            PrivacyBudget(0.0)


class TestComposition:
    def test_compose_sequential(self):
        assert compose_sequential(0.1, 0.2, 0.3) == pytest.approx(0.6)

    def test_compose_requires_args(self):
        with pytest.raises(PrivacyBudgetError):
            compose_sequential()

    def test_split_even(self):
        parts = split_budget(1.0, 4)
        assert len(parts) == 4
        assert sum(parts) == pytest.approx(1.0)

    def test_split_weighted(self):
        parts = split_budget(1.0, 2, weights=[3.0, 1.0])
        assert parts[0] == pytest.approx(0.75)
        assert parts[1] == pytest.approx(0.25)

    def test_split_weight_count_mismatch(self):
        with pytest.raises(PrivacyBudgetError):
            split_budget(1.0, 2, weights=[1.0])
