"""Unit tests for the extra workload generators (AllRange, marginals, windows)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads import (
    allrange_workload,
    marginals_workload,
    sliding_window_workload,
)


class TestAllRange:
    def test_row_count(self):
        w = allrange_workload(4)
        assert w.num_queries == 10  # 4 * 5 / 2

    def test_rows_are_ranges(self):
        w = allrange_workload(5)
        for row in w.matrix:
            ones = np.flatnonzero(row)
            assert np.array_equal(ones, np.arange(ones[0], ones[-1] + 1))

    def test_contains_all_singletons_and_total(self):
        w = allrange_workload(3)
        rows = {tuple(row) for row in w.matrix}
        assert (1.0, 0.0, 0.0) in rows
        assert (0.0, 0.0, 1.0) in rows
        assert (1.0, 1.0, 1.0) in rows

    def test_full_rank(self):
        assert allrange_workload(6).rank == 6

    def test_sensitivity(self):
        # Cell j is covered by (j+1) * (n-j) ranges; max at the middle.
        w = allrange_workload(5)
        expected = max((j + 1) * (5 - j) for j in range(5))
        assert w.sensitivity == expected


class TestMarginals:
    def test_shape(self):
        w = marginals_workload(3, 4)
        assert w.shape == (7, 12)

    def test_row_sums_answer(self):
        w = marginals_workload(2, 3)
        grid = np.arange(6.0)  # [[0,1,2],[3,4,5]]
        answers = w.answer(grid)
        assert np.allclose(answers[:2], [3.0, 12.0])  # row sums
        assert np.allclose(answers[2:], [3.0, 5.0, 7.0])  # column sums

    def test_rank_is_rows_plus_cols_minus_one(self):
        w = marginals_workload(4, 6)
        assert w.rank == 9

    def test_sensitivity_two(self):
        # Each cell contributes to exactly one row sum and one column sum.
        assert marginals_workload(3, 3).sensitivity == 2.0

    def test_low_rank_property(self):
        assert marginals_workload(8, 8).is_low_rank()


class TestSlidingWindow:
    def test_shape(self):
        w = sliding_window_workload(10, 3)
        assert w.shape == (8, 10)

    def test_window_sums(self):
        w = sliding_window_workload(5, 2)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.allclose(w.answer(x), [3.0, 5.0, 7.0, 9.0])

    def test_window_equal_domain_is_total(self):
        w = sliding_window_workload(4, 4)
        assert w.num_queries == 1
        assert np.allclose(w.matrix, 1.0)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValidationError):
            sliding_window_workload(3, 4)

    def test_sensitivity_is_window(self):
        # Interior cells appear in `window` consecutive queries.
        assert sliding_window_workload(10, 3).sensitivity == 3.0


class TestLrmOnStructuredWorkloads:
    def test_lrm_exploits_marginals(self):
        # Marginals are strongly low-rank; with a moderate solver budget
        # LRM comfortably beats noise-on-data (the tiny unit-test budget of
        # the other tests is not enough for this structured 0/1 instance).
        from repro.core.lrm import LowRankMechanism
        from repro.mechanisms.baselines import NoiseOnDataMechanism

        w = marginals_workload(8, 16)
        lrm = LowRankMechanism(max_outer=60, max_inner=5, nesterov_iters=40, stall_iters=20).fit(w)
        nod = NoiseOnDataMechanism().fit(w)
        assert lrm.expected_squared_error(1.0) < nod.expected_squared_error(1.0)
