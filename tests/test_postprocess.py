"""Unit tests for post-processing of noisy releases."""

import numpy as np
import pytest

from repro.analysis.postprocess import (
    clamp_non_negative,
    postprocess_answers,
    project_consistent,
    round_counts,
)
from repro.workloads import Workload, wrange


class TestClampAndRound:
    def test_clamp(self):
        assert np.allclose(clamp_non_negative([-1.0, 2.0]), [0.0, 2.0])

    def test_clamp_no_negatives_untouched(self):
        assert np.allclose(clamp_non_negative([1.0, 2.0]), [1.0, 2.0])

    def test_round(self):
        assert np.allclose(round_counts([1.4, 2.6]), [1.0, 3.0])


class TestProjectConsistent:
    def _intro(self):
        return np.array(
            [
                [1.0, 1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
            ]
        )

    def test_restores_linear_identities(self):
        w = self._intro()
        noisy = np.array([10.0, 3.0, 5.0])  # violates q1 = q2 + q3
        projected = project_consistent(w, noisy)
        assert projected[0] == pytest.approx(projected[1] + projected[2])

    def test_consistent_input_unchanged(self):
        w = self._intro()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        exact = w @ x
        assert np.allclose(project_consistent(w, exact), exact)

    def test_projection_never_increases_error(self):
        rng = np.random.default_rng(0)
        w = self._intro()
        x = rng.integers(0, 100, 4).astype(float)
        exact = w @ x
        for _ in range(50):
            noisy = exact + rng.laplace(0, 5, 3)
            projected = project_consistent(w, noisy)
            assert np.sum((projected - exact) ** 2) <= np.sum((noisy - exact) ** 2) + 1e-9

    def test_idempotent(self):
        w = self._intro()
        noisy = np.array([10.0, 3.0, 5.0])
        once = project_consistent(w, noisy)
        assert np.allclose(project_consistent(w, once), once)

    def test_full_rank_workload_is_noop(self):
        w = np.eye(3)
        noisy = np.array([1.0, -2.0, 3.0])
        assert np.allclose(project_consistent(w, noisy), noisy)


class TestPipeline:
    def test_order_consistency_then_clamp_then_round(self):
        w = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        noisy = np.array([4.9, 5.4, -0.8])
        out = postprocess_answers(w, noisy, non_negative=True, integral=True)
        assert np.all(out >= 0)
        assert np.allclose(out, np.round(out))

    def test_defaults_only_consistency(self):
        w = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        noisy = np.array([10.0, 3.0, 5.0])
        out = postprocess_answers(w, noisy)
        assert out[0] == pytest.approx(out[1] + out[2])

    def test_consistency_improves_real_release(self):
        # End-to-end: LRM release + projection beats raw release on a
        # redundant batch, averaged over trials.
        from repro.mechanisms.baselines import NoiseOnResultsMechanism

        base = wrange(4, 16, seed=0)
        redundant = Workload(
            np.vstack([base.matrix, base.matrix.sum(axis=0, keepdims=True)])
        )
        mech = NoiseOnResultsMechanism().fit(redundant)
        x = np.arange(16.0) * 10
        exact = redundant.answer(x)
        rng = np.random.default_rng(1)
        raw_error = 0.0
        projected_error = 0.0
        for _ in range(200):
            noisy = mech.answer(x, 1.0, rng)
            raw_error += np.sum((noisy - exact) ** 2)
            fixed = project_consistent(redundant.matrix, noisy)
            projected_error += np.sum((fixed - exact) ** 2)
        assert projected_error < raw_error
