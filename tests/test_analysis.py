"""Unit tests for the analysis package: error metrics, theory, comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import ComparisonRow, compare_mechanisms
from repro.analysis.error import (
    MeasuredError,
    average_squared_error,
    measure_mechanism,
    squared_error,
)
from repro.analysis.theory import (
    decomposition_expected_error,
    noise_on_data_error,
    noise_on_results_error,
    nor_beats_nod,
    strategy_expected_error,
)
from repro.exceptions import ValidationError
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import wrange, wrelated


class TestErrorMetrics:
    def test_squared_error(self):
        assert squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(5.0)

    def test_average(self):
        assert average_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_zero_for_identical(self):
        assert squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            squared_error([1.0], [1.0, 2.0])


class TestMeasureMechanism:
    def test_returns_measured_error(self):
        wl = wrange(5, 16, seed=0)
        mech = NoiseOnDataMechanism().fit(wl)
        measured = measure_mechanism(mech, np.ones(16), 1.0, trials=10, rng=0)
        assert isinstance(measured, MeasuredError)
        assert measured.trials == 10
        assert measured.total_squared_error > 0
        assert measured.average_squared_error == pytest.approx(
            measured.total_squared_error / 5
        )

    def test_requires_fitted(self):
        with pytest.raises(ValidationError):
            measure_mechanism(NoiseOnDataMechanism(), np.ones(4), 1.0)

    def test_timing_recorded(self):
        wl = wrange(4, 8, seed=1)
        mech = NoiseOnDataMechanism().fit(wl)
        measured = measure_mechanism(mech, np.ones(8), 1.0, trials=5, rng=0)
        assert measured.answer_seconds >= 0.0

    def test_convergence_to_expectation(self):
        wl = wrange(8, 32, seed=2)
        mech = NoiseOnDataMechanism().fit(wl)
        measured = measure_mechanism(mech, np.ones(32), 1.0, trials=3000, rng=3)
        assert measured.total_squared_error == pytest.approx(
            mech.expected_squared_error(1.0), rel=0.1
        )


class TestTheory:
    def test_nod_formula(self):
        w = np.array([[1.0, 2.0]])
        assert noise_on_data_error(w, 1.0) == pytest.approx(2 * 5)

    def test_nor_formula(self):
        w = np.array([[1.0, 1.0], [1.0, 0.0]])  # sensitivity 2, m = 2
        assert noise_on_results_error(w, 1.0) == pytest.approx(2 * 2 * 4)

    def test_decomposition_error_identity(self):
        # B = W, L = I reproduces the NOD formula.
        rng = np.random.default_rng(0)
        w = rng.standard_normal((4, 6))
        assert decomposition_expected_error(w, np.eye(6), 1.0) == pytest.approx(
            noise_on_data_error(w, 1.0)
        )

    def test_decomposition_shape_mismatch(self):
        with pytest.raises(ValidationError):
            decomposition_expected_error(np.ones((2, 3)), np.ones((2, 4)), 1.0)

    def test_strategy_identity_matches_nod(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((5, 8))
        assert strategy_expected_error(w, np.eye(8), 1.0) == pytest.approx(
            noise_on_data_error(w, 1.0)
        )

    def test_strategy_self_matches_nor_for_full_rank(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((4, 4))
        assert strategy_expected_error(w, w, 1.0) == pytest.approx(
            noise_on_results_error(w, 1.0)
        )

    def test_strategy_unsupported_workload_raises(self):
        # Strategy spans only the first coordinate; workload needs both.
        strategy = np.array([[1.0, 0.0]])
        w = np.array([[0.0, 1.0]])
        with pytest.raises(ValidationError, match="row space"):
            strategy_expected_error(w, strategy, 1.0)

    def test_nor_beats_nod_logic(self):
        # m < n with uniform columns: NOR wins; identity (m = n): never.
        w_wide = np.ones((1, 10))
        assert nor_beats_nod(w_wide)
        assert not nor_beats_nod(np.eye(4))


class TestCompareMechanisms:
    def test_rows_structure(self):
        wl = wrange(4, 16, seed=0)
        rows = compare_mechanisms(
            wl, np.ones(16), 1.0, mechanisms=("LM", "NOR"), trials=3, rng=0
        )
        assert [row.mechanism for row in rows] == ["LM", "NOR"]
        assert all(row.ok for row in rows)
        assert all(row.average_squared_error > 0 for row in rows)

    def test_expected_error_included(self):
        wl = wrange(4, 16, seed=0)
        rows = compare_mechanisms(wl, np.ones(16), 1.0, mechanisms=("LM",), trials=2, rng=0)
        assert rows[0].expected_average_error == pytest.approx(
            NoiseOnDataMechanism().fit(wl).average_expected_error(1.0)
        )

    def test_accepts_instances(self):
        wl = wrange(4, 16, seed=0)
        rows = compare_mechanisms(
            wl, np.ones(16), 1.0, mechanisms=(NoiseOnDataMechanism(),), trials=2, rng=0
        )
        assert rows[0].mechanism == "LM"

    def test_unknown_label_reported_as_failure(self):
        wl = wrange(4, 16, seed=0)
        rows = compare_mechanisms(wl, np.ones(16), 1.0, mechanisms=("NOPE",), trials=2, rng=0)
        assert not rows[0].ok
        assert "unknown mechanism" in rows[0].failure

    def test_mechanism_kwargs_forwarded(self):
        wl = wrelated(6, 12, s=2, seed=0)
        rows = compare_mechanisms(
            wl,
            np.ones(12),
            1.0,
            mechanisms=("LRM",),
            trials=2,
            rng=0,
            mechanism_kwargs={"LRM": {"max_outer": 5, "max_inner": 2, "nesterov_iters": 10}},
        )
        assert rows[0].ok

    def test_as_dict(self):
        row = ComparisonRow("LM", average_squared_error=1.0)
        payload = row.as_dict()
        assert payload["mechanism"] == "LM"
        assert payload["failure"] is None
