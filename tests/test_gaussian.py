"""Unit tests for the Gaussian / (eps, delta)-DP extension."""

import numpy as np
import pytest

from repro.core.alm import decompose_workload
from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism
from repro.exceptions import ValidationError
from repro.linalg.projection import project_columns_l2
from repro.mechanisms.gaussian import (
    GaussianNoiseOnDataMechanism,
    GaussianNoiseOnResultsMechanism,
)
from repro.privacy.noise import (
    expected_squared_gaussian_noise,
    gaussian_noise,
    gaussian_noise_batch,
    gaussian_profile_delta,
    gaussian_sigma,
    gaussian_sigma_batch,
)
from repro.privacy.sensitivity import column_l2_norms, l2_sensitivity
from repro.workloads import wrange, wrelated

FAST = {"max_outer": 25, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}


class TestGaussianCalibration:
    """The analytic (Balle-Wang) calibration: valid at every epsilon."""

    @pytest.mark.parametrize("epsilon", [0.05, 0.5, 0.99, 1.0, 2.0, 5.0, 10.0])
    @pytest.mark.parametrize("delta", [1e-5, 1e-9])
    def test_sigma_satisfies_and_saturates_the_profile(self, epsilon, delta):
        # The returned sigma meets the exact (eps, delta) guarantee, and is
        # tight: 0.1% less noise already violates it. This is the
        # numerical verification of correct calibration at eps >= 1 that
        # the classical formula fails.
        sigma = gaussian_sigma(2.0, epsilon, delta)
        assert gaussian_profile_delta(sigma, 2.0, epsilon) <= delta
        assert gaussian_profile_delta(0.999 * sigma, 2.0, epsilon) > delta

    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.7, 0.99])
    def test_analytic_never_noisier_than_classical(self, epsilon):
        # Where the classical formula is valid (eps < 1) it is a looser
        # sufficient condition, so the analytic sigma is at most as large.
        analytic = gaussian_sigma(1.0, epsilon, 1e-6)
        classical = gaussian_sigma(1.0, epsilon, 1e-6, mode="classical")
        assert analytic <= classical

    def test_sigma_monotone_decreasing_in_epsilon(self):
        sigmas = gaussian_sigma_batch(1.0, np.linspace(0.05, 20.0, 40), 1e-6)
        assert np.all(np.diff(sigmas) < 0.0)

    def test_classical_formula_value(self):
        expected = 2.0 * np.sqrt(2 * np.log(1.25 / 1e-5)) / 0.5
        assert gaussian_sigma(2.0, 0.5, 1e-5, mode="classical") == pytest.approx(expected)

    @pytest.mark.parametrize("epsilon", [1.0, 1.5, 10.0])
    def test_classical_mode_rejects_eps_ge_one(self, epsilon):
        # The Dwork-Roth theorem does not cover eps >= 1; requesting the
        # classical formula there must raise, not silently under-noise.
        with pytest.raises(ValidationError, match="epsilon < 1"):
            gaussian_sigma(1.0, epsilon, 1e-6, mode="classical")
        with pytest.raises(ValidationError, match="epsilon < 1"):
            gaussian_sigma_batch(1.0, [0.5, epsilon], 1e-6, mode="classical")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="mode"):
            gaussian_sigma(1.0, 0.5, 1e-6, mode="exotic")
        with pytest.raises(ValidationError, match="mode"):
            gaussian_sigma_batch(1.0, [0.5], 1e-6, mode="exotic")

    def test_batch_sigmas_bit_identical_to_single(self):
        # The batched serving path must calibrate each row exactly like a
        # standalone release — including at eps >= 1, where sigma is no
        # longer proportional to 1/eps.
        epsilons = [0.1, 0.5, 1.0, 2.0, 7.5]
        batch = gaussian_sigma_batch(3.0, epsilons, 1e-7)
        singles = np.array([gaussian_sigma(3.0, eps, 1e-7) for eps in epsilons])
        assert np.array_equal(batch, singles)

    def test_classical_batch_matches_single(self):
        epsilons = [0.1, 0.5, 0.9]
        batch = gaussian_sigma_batch(2.0, epsilons, 1e-6, mode="classical")
        singles = [gaussian_sigma(2.0, eps, 1e-6, mode="classical") for eps in epsilons]
        assert np.allclose(batch, singles, rtol=0, atol=0)

    def test_noise_batch_rows_use_single_release_sigmas(self):
        # gaussian_noise_batch row i is the single-release draw rescaled:
        # one (k, size) standard-normal block scaled by the per-eps sigmas.
        epsilons = [0.5, 1.5, 3.0]
        got = gaussian_noise_batch(8, 2.0, epsilons, 1e-6, rng=11)
        rng = np.random.default_rng(11)
        sigmas = np.array([gaussian_sigma(2.0, eps, 1e-6) for eps in epsilons])
        expected = rng.normal(loc=0.0, scale=sigmas[:, None], size=(3, 8))
        assert np.array_equal(got, expected)


class TestGaussianNoise:
    def test_sigma_rejects_delta_one(self):
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 1.0, 1.0)

    def test_noise_shape_and_determinism(self):
        a = gaussian_noise(6, 1.0, 1.0, 1e-6, rng=3)
        b = gaussian_noise(6, 1.0, 1.0, 1e-6, rng=3)
        assert a.shape == (6,)
        assert np.array_equal(a, b)

    def test_empirical_variance(self):
        sigma = gaussian_sigma(1.0, 1.0, 1e-6)
        samples = gaussian_noise(200_000, 1.0, 1.0, 1e-6, rng=0)
        assert np.var(samples) == pytest.approx(sigma**2, rel=0.05)

    def test_expected_squared_matches_sigma(self):
        sigma = gaussian_sigma(1.0, 0.5, 1e-6)
        assert expected_squared_gaussian_noise(10, 1.0, 0.5, 1e-6) == pytest.approx(
            10 * sigma**2
        )


class TestL2Sensitivity:
    def test_column_norms(self):
        matrix = np.array([[3.0, 1.0], [4.0, 0.0]])
        assert np.allclose(column_l2_norms(matrix), [5.0, 1.0])

    def test_sensitivity(self):
        assert l2_sensitivity(np.array([[3.0, 1.0], [4.0, 0.0]])) == pytest.approx(5.0)

    def test_l2_at_most_l1(self):
        from repro.privacy.sensitivity import l1_sensitivity

        rng = np.random.default_rng(0)
        m = rng.standard_normal((5, 7))
        assert l2_sensitivity(m) <= l1_sensitivity(m) + 1e-12


class TestL2Projection:
    def test_inside_unchanged(self):
        matrix = np.full((3, 2), 0.1)
        assert np.allclose(project_columns_l2(matrix), matrix)

    def test_outside_on_sphere(self):
        matrix = np.array([[3.0], [4.0]])
        result = project_columns_l2(matrix)
        assert np.linalg.norm(result) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(result.ravel(), [0.6, 0.8])

    def test_columns_feasible(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((6, 10)) * 5
        result = project_columns_l2(matrix)
        assert np.all(np.sqrt(np.sum(result**2, axis=0)) <= 1 + 1e-9)

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((4, 5)) * 3
        once = project_columns_l2(matrix)
        assert np.allclose(project_columns_l2(once), once)


class TestL2Decomposition:
    def test_norm_recorded(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.norm == "l2"

    def test_l2_feasible(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert np.all(np.sqrt(np.sum(dec.l**2, axis=0)) <= 1 + 1e-8)

    def test_reconstructs_w(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.residual_norm <= 1e-6 * np.linalg.norm(wl.matrix)

    def test_sensitivity_at_l2_boundary(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.sensitivity == pytest.approx(1.0, abs=1e-6)

    def test_invalid_norm(self):
        with pytest.raises(ValidationError):
            decompose_workload(np.eye(3), norm="linf")

    def test_gaussian_error_formula(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        sigma = gaussian_sigma(dec.sensitivity, 1.0, 1e-6)
        assert dec.expected_gaussian_noise_error(1.0, 1e-6) == pytest.approx(
            dec.scale * sigma**2
        )


class TestGaussianBaselines:
    def test_glm_analytic_error(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        sigma = gaussian_sigma(1.0, 0.5, 1e-6)
        assert mech.expected_squared_error(0.5) == pytest.approx(
            sigma**2 * wl.frobenius_squared
        )

    def test_glm_empirical_matches_analytic(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        empirical = mech.empirical_squared_error(np.ones(16), 0.5, trials=2000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(0.5), rel=0.1)

    def test_gnor_analytic_error(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnResultsMechanism(delta=1e-6).fit(wl)
        sigma = gaussian_sigma(l2_sensitivity(wl.matrix), 0.5, 1e-6)
        assert mech.expected_squared_error(0.5) == pytest.approx(6 * sigma**2)

    def test_rejects_delta_ge_one(self):
        with pytest.raises(ValidationError):
            GaussianNoiseOnDataMechanism(delta=1.0)


class TestGaussianLRM:
    def test_answer_shape(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        assert mech.answer(np.ones(32), 0.5, rng=0).shape == (8,)

    def test_uses_l2_decomposition(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        assert mech.decomposition.norm == "l2"

    def test_empirical_matches_analytic(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        x = np.ones(32) * 10
        empirical = mech.empirical_squared_error(x, 0.5, trials=2000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(0.5, x=x), rel=0.15)

    def test_beats_gaussian_nod_on_low_rank(self, fast_lrm_kwargs):
        wl = wrelated(16, 256, s=3, seed=1)
        glrm = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        glm = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        assert glrm.expected_squared_error(0.5) < glm.expected_squared_error(0.5)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValidationError):
            GaussianLowRankMechanism(delta=2.0)

    def test_name(self):
        assert GaussianLowRankMechanism.name == "GLRM"
        assert issubclass(GaussianLowRankMechanism, LowRankMechanism)


class TestGaussianAtLargeEpsilon:
    """eps >= 1 releases across GLM/GNOR/GLRM on the single, batched and
    compiled-plan paths — the regime the classical formula silently
    under-noised."""

    EPSILONS = [0.5, 1.0, 2.5]

    def _mechanisms(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        return wl, [
            GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl),
            GaussianNoiseOnResultsMechanism(delta=1e-6).fit(wl),
            GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl),
        ]

    def test_expected_error_monotone_decreasing_in_epsilon(self, fast_lrm_kwargs):
        _, mechanisms = self._mechanisms(fast_lrm_kwargs)
        for mech in mechanisms:
            errors = [mech.expected_squared_error(eps) for eps in (0.5, 1.0, 2.0, 5.0)]
            assert np.all(np.diff(errors) < 0.0), mech.name

    @pytest.mark.parametrize("epsilon", [1.0, 3.0])
    def test_single_release_empirical_variance(self, fast_lrm_kwargs, epsilon):
        # At eps >= 1 the released noise matches the analytic expected
        # error (which the calibration tests tie to the exact guarantee).
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        x = np.ones(16)
        empirical = mech.empirical_squared_error(x, epsilon, trials=4000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(epsilon), rel=0.1)

    def test_batched_rows_match_manual_per_epsilon_draw(self, fast_lrm_kwargs):
        # answer_many row i carries exactly the sigma of a single release
        # at epsilons[i]: reconstruct the batch from the release operator
        # and one per-epsilon-calibrated block draw.
        wl, mechanisms = self._mechanisms(fast_lrm_kwargs)
        x = np.arange(32.0)
        for mech in mechanisms:
            got = mech.answer_many(x, self.EPSILONS, rng=9)
            operator = mech.release_operator()
            rng = np.random.default_rng(9)
            strategy_answers = x if operator.strategy is None else operator.strategy @ x
            noise = gaussian_noise_batch(
                strategy_answers.size, operator.sensitivity, self.EPSILONS, 1e-6, rng
            )
            noisy = strategy_answers[None, :] + noise
            expected = (
                noisy if operator.recombination is None else noisy @ operator.recombination.T
            )
            assert np.array_equal(got, expected), mech.name

    def test_compiled_plan_path_at_large_epsilon(self, fast_lrm_kwargs):
        # engine.execute / execute_many at eps >= 1 run the same calibrated
        # draw as the mechanism's own answer (compiling changes cost only).
        from repro.engine import PrivateQueryEngine

        wl = wrange(6, 32, seed=0)
        data = np.arange(32.0)
        engine = PrivateQueryEngine(
            data, total_budget=100.0, delta=1e-3, seed=21,
            mechanism_kwargs={"GLM": {"delta": 1e-6}},
        )
        plan = engine.plan(wl, mechanism="GLM")
        release = engine.execute(plan, 2.0)
        expected = plan.mechanism.answer(data, 2.0, np.random.default_rng(21))
        assert np.array_equal(release.answers, expected)

        batch = engine.execute_many([(plan, eps) for eps in self.EPSILONS])
        operator = plan.mechanism.release_operator()
        rng = np.random.default_rng(21)
        rng.normal(size=32)  # the single release above consumed one draw
        noise = gaussian_noise_batch(32, operator.sensitivity, self.EPSILONS, 1e-6, rng)
        expected_rows = (data[None, :] + noise) @ wl.matrix.T
        for release, row in zip(batch, expected_rows):
            assert np.allclose(release.answers, row)
