"""Unit tests for the Gaussian / (eps, delta)-DP extension."""

import numpy as np
import pytest

from repro.core.alm import decompose_workload
from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism
from repro.exceptions import ValidationError
from repro.linalg.projection import project_columns_l2
from repro.mechanisms.gaussian import (
    GaussianNoiseOnDataMechanism,
    GaussianNoiseOnResultsMechanism,
)
from repro.privacy.noise import (
    expected_squared_gaussian_noise,
    gaussian_noise,
    gaussian_sigma,
)
from repro.privacy.sensitivity import column_l2_norms, l2_sensitivity
from repro.workloads import wrange, wrelated

FAST = {"max_outer": 25, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}


class TestGaussianNoise:
    def test_sigma_formula(self):
        expected = 2.0 * np.sqrt(2 * np.log(1.25 / 1e-5)) / 0.5
        assert gaussian_sigma(2.0, 0.5, 1e-5) == pytest.approx(expected)

    def test_sigma_rejects_delta_one(self):
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 1.0, 1.0)

    def test_noise_shape_and_determinism(self):
        a = gaussian_noise(6, 1.0, 1.0, 1e-6, rng=3)
        b = gaussian_noise(6, 1.0, 1.0, 1e-6, rng=3)
        assert a.shape == (6,)
        assert np.array_equal(a, b)

    def test_empirical_variance(self):
        sigma = gaussian_sigma(1.0, 1.0, 1e-6)
        samples = gaussian_noise(200_000, 1.0, 1.0, 1e-6, rng=0)
        assert np.var(samples) == pytest.approx(sigma**2, rel=0.05)

    def test_expected_squared_matches_sigma(self):
        sigma = gaussian_sigma(1.0, 0.5, 1e-6)
        assert expected_squared_gaussian_noise(10, 1.0, 0.5, 1e-6) == pytest.approx(
            10 * sigma**2
        )


class TestL2Sensitivity:
    def test_column_norms(self):
        matrix = np.array([[3.0, 1.0], [4.0, 0.0]])
        assert np.allclose(column_l2_norms(matrix), [5.0, 1.0])

    def test_sensitivity(self):
        assert l2_sensitivity(np.array([[3.0, 1.0], [4.0, 0.0]])) == pytest.approx(5.0)

    def test_l2_at_most_l1(self):
        from repro.privacy.sensitivity import l1_sensitivity

        rng = np.random.default_rng(0)
        m = rng.standard_normal((5, 7))
        assert l2_sensitivity(m) <= l1_sensitivity(m) + 1e-12


class TestL2Projection:
    def test_inside_unchanged(self):
        matrix = np.full((3, 2), 0.1)
        assert np.allclose(project_columns_l2(matrix), matrix)

    def test_outside_on_sphere(self):
        matrix = np.array([[3.0], [4.0]])
        result = project_columns_l2(matrix)
        assert np.linalg.norm(result) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(result.ravel(), [0.6, 0.8])

    def test_columns_feasible(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((6, 10)) * 5
        result = project_columns_l2(matrix)
        assert np.all(np.sqrt(np.sum(result**2, axis=0)) <= 1 + 1e-9)

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((4, 5)) * 3
        once = project_columns_l2(matrix)
        assert np.allclose(project_columns_l2(once), once)


class TestL2Decomposition:
    def test_norm_recorded(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.norm == "l2"

    def test_l2_feasible(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert np.all(np.sqrt(np.sum(dec.l**2, axis=0)) <= 1 + 1e-8)

    def test_reconstructs_w(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.residual_norm <= 1e-6 * np.linalg.norm(wl.matrix)

    def test_sensitivity_at_l2_boundary(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        assert dec.sensitivity == pytest.approx(1.0, abs=1e-6)

    def test_invalid_norm(self):
        with pytest.raises(ValidationError):
            decompose_workload(np.eye(3), norm="linf")

    def test_gaussian_error_formula(self):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        sigma = gaussian_sigma(dec.sensitivity, 1.0, 1e-6)
        assert dec.expected_gaussian_noise_error(1.0, 1e-6) == pytest.approx(
            dec.scale * sigma**2
        )


class TestGaussianBaselines:
    def test_glm_analytic_error(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        sigma = gaussian_sigma(1.0, 0.5, 1e-6)
        assert mech.expected_squared_error(0.5) == pytest.approx(
            sigma**2 * wl.frobenius_squared
        )

    def test_glm_empirical_matches_analytic(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        empirical = mech.empirical_squared_error(np.ones(16), 0.5, trials=2000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(0.5), rel=0.1)

    def test_gnor_analytic_error(self):
        wl = wrange(6, 16, seed=0)
        mech = GaussianNoiseOnResultsMechanism(delta=1e-6).fit(wl)
        sigma = gaussian_sigma(l2_sensitivity(wl.matrix), 0.5, 1e-6)
        assert mech.expected_squared_error(0.5) == pytest.approx(6 * sigma**2)

    def test_rejects_delta_ge_one(self):
        with pytest.raises(ValidationError):
            GaussianNoiseOnDataMechanism(delta=1.0)


class TestGaussianLRM:
    def test_answer_shape(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        assert mech.answer(np.ones(32), 0.5, rng=0).shape == (8,)

    def test_uses_l2_decomposition(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        assert mech.decomposition.norm == "l2"

    def test_empirical_matches_analytic(self, fast_lrm_kwargs):
        wl = wrelated(8, 32, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        x = np.ones(32) * 10
        empirical = mech.empirical_squared_error(x, 0.5, trials=2000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(0.5, x=x), rel=0.15)

    def test_beats_gaussian_nod_on_low_rank(self, fast_lrm_kwargs):
        wl = wrelated(16, 256, s=3, seed=1)
        glrm = GaussianLowRankMechanism(delta=1e-6, **fast_lrm_kwargs).fit(wl)
        glm = GaussianNoiseOnDataMechanism(delta=1e-6).fit(wl)
        assert glrm.expected_squared_error(0.5) < glm.expected_squared_error(0.5)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValidationError):
            GaussianLowRankMechanism(delta=2.0)

    def test_name(self):
        assert GaussianLowRankMechanism.name == "GLRM"
        assert issubclass(GaussianLowRankMechanism, LowRankMechanism)
