"""Unit tests for the experiment harness (config, runner, figures, reporting)."""

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import (
    BENCH_GRID,
    DEFAULTS,
    FULL_GRID,
    PARAMETER_GRID,
    REDUCED_GRID,
    default_gamma,
    grid_for_scale,
    resolve_scale,
)
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import format_series, format_table, summarize_result
from repro.experiments.runner import ExperimentResult, dataset_vector


class TestConfig:
    def test_table1_transcription(self):
        assert PARAMETER_GRID["n"] == (128, 256, 512, 1024, 2048, 4096, 8192)
        assert PARAMETER_GRID["m"] == (64, 128, 256, 512, 1024)
        assert PARAMETER_GRID["gamma"] == (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
        assert len(PARAMETER_GRID["rank_ratio"]) == 9
        assert len(PARAMETER_GRID["s_ratio"]) == 10

    def test_defaults_sane(self):
        assert DEFAULTS["rank_ratio"] == 1.2
        assert DEFAULTS["epsilon"] in PARAMETER_GRID["epsilon"]

    def test_resolve_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert resolve_scale() == "reduced"

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert resolve_scale() == "full"

    def test_resolve_scale_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert resolve_scale("bench") == "bench"

    def test_resolve_scale_invalid(self):
        with pytest.raises(ValidationError):
            resolve_scale("huge")

    def test_grids_have_same_keys(self):
        assert set(FULL_GRID) == set(REDUCED_GRID) == set(BENCH_GRID)

    def test_grid_for_scale_copies(self):
        grid = grid_for_scale("bench")
        grid["trials"] = 999
        assert BENCH_GRID["trials"] != 999

    def test_default_gamma_relative(self):
        w = np.eye(4) * 10  # ||W||_F = 20
        assert default_gamma(w, relative=0.01) == pytest.approx(0.2)


class TestExperimentResult:
    def _make(self):
        result = ExperimentResult(name="demo", sweep_parameter="n")
        result.add_row(mechanism="LM", n=10, average_squared_error=1.0)
        result.add_row(mechanism="LM", n=20, average_squared_error=2.0)
        result.add_row(mechanism="LRM", n=10, average_squared_error=0.5)
        result.add_row(mechanism="LRM", n=20, average_squared_error=None)
        return result

    def test_mechanisms_order(self):
        assert self._make().mechanisms() == ["LM", "LRM"]

    def test_series(self):
        xs, ys = self._make().series("LM")
        assert np.array_equal(xs, [10, 20])
        assert np.array_equal(ys, [1.0, 2.0])

    def test_series_skips_none(self):
        xs, ys = self._make().series("LRM")
        assert np.array_equal(xs, [10])

    def test_series_filters(self):
        result = ExperimentResult(name="demo", sweep_parameter="n")
        result.add_row(mechanism="LM", n=1, dataset="a", average_squared_error=1.0)
        result.add_row(mechanism="LM", n=1, dataset="b", average_squared_error=2.0)
        _, ys = result.series("LM", dataset="b")
        assert np.array_equal(ys, [2.0])

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        self._make().to_json(path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert len(payload["rows"]) == 4

    def test_csv_output(self, tmp_path):
        path = tmp_path / "result.csv"
        self._make().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("mechanism,n,")
        assert len(lines) == 5

    def test_csv_empty_raises(self):
        with pytest.raises(ValidationError):
            ExperimentResult(name="x", sweep_parameter="n").to_csv()


class TestDatasetVector:
    def test_named_dataset_merged(self):
        x = dataset_vector("social_network", 64)
        assert x.size == 64

    def test_raw_vector_merged(self):
        x = dataset_vector(np.ones(100), 10)
        assert np.allclose(x, 10.0)

    def test_deterministic(self):
        assert np.array_equal(
            dataset_vector("net_trace", 32, seed=1), dataset_vector("net_trace", 32, seed=1)
        )


class TestReporting:
    def _result(self):
        result = ExperimentResult(name="demo", sweep_parameter="n")
        for n in (10, 20):
            result.add_row(mechanism="LM", n=n, average_squared_error=float(n))
            result.add_row(mechanism="LRM", n=n, average_squared_error=n / 10.0)
        return result

    def test_format_table_contains_values(self):
        text = format_table(self._result())
        assert "LM" in text and "LRM" in text
        assert "10" in text

    def test_format_table_grouping(self):
        result = ExperimentResult(name="demo", sweep_parameter="n")
        result.add_row(mechanism="LM", n=1, dataset="d1", average_squared_error=1.0)
        result.add_row(mechanism="LM", n=1, dataset="d2", average_squared_error=2.0)
        text = format_table(result, group_keys=("dataset",))
        assert "dataset=d1" in text and "dataset=d2" in text

    def test_format_series(self):
        text = format_series(self._result(), "LM")
        assert "demo / LM" in text

    def test_summarize_geometric_mean(self):
        summary = summarize_result(self._result())
        assert summary["LM"] == pytest.approx(np.sqrt(10 * 20))
        assert summary["LRM"] == pytest.approx(np.sqrt(1 * 2))

    def test_format_table_rejects_non_result(self):
        with pytest.raises(ValidationError):
            format_table({"rows": []})


class TestFigureRegistry:
    def test_all_eight_figures_present(self):
        assert sorted(ALL_FIGURES) == [f"figure{i}" for i in range(2, 10)]

    def test_figures_callable_with_scale(self):
        for fn in ALL_FIGURES.values():
            assert callable(fn)
