"""Exception hierarchy contracts."""

import pytest

from repro.exceptions import (
    DecompositionError,
    NotFittedError,
    PrivacyBudgetError,
    ReproError,
    ValidationError,
)


def test_validation_error_is_repro_error():
    assert issubclass(ValidationError, ReproError)


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)


def test_decomposition_error_is_runtime_error():
    assert issubclass(DecompositionError, RuntimeError)
    assert issubclass(DecompositionError, ReproError)


def test_not_fitted_error_is_runtime_error():
    assert issubclass(NotFittedError, RuntimeError)
    assert issubclass(NotFittedError, ReproError)


def test_privacy_budget_error_is_value_error():
    assert issubclass(PrivacyBudgetError, ValueError)
    assert issubclass(PrivacyBudgetError, ReproError)


def test_catching_base_class_catches_all():
    for exc_type in (ValidationError, DecompositionError, NotFittedError, PrivacyBudgetError):
        with pytest.raises(ReproError):
            raise exc_type("boom")
