"""Unit tests for decomposition diagnostics."""

import numpy as np
import pytest

from repro.analysis.diagnostics import (
    decomposition_report,
    format_decomposition_report,
    sparkline,
)
from repro.core.alm import decompose_workload
from repro.exceptions import ValidationError
from repro.workloads import wrelated

FAST = {"max_outer": 20, "max_inner": 4, "nesterov_iters": 20, "stall_iters": 6}


@pytest.fixture(scope="module")
def fitted():
    wl = wrelated(10, 40, s=3, seed=0)
    return wl, decompose_workload(wl.matrix, **FAST)


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(range(1, 200), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 10.0, 100.0])) == 3

    def test_monotone_series_monotone_chars(self):
        chars = sparkline([1.0, 10.0, 100.0, 1000.0])
        levels = " .:-=+*#%@"
        positions = [levels.index(c) for c in chars]
        assert positions == sorted(positions)

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert len(sparkline([5.0, 5.0, 5.0])) == 3


class TestReport:
    def test_keys(self, fitted):
        _, dec = fitted
        report = decomposition_report(dec)
        assert {"rank", "converged", "scale", "sensitivity", "column_budget", "trace"} <= set(
            report
        )

    def test_bounds_section_with_workload(self, fitted):
        wl, dec = fitted
        report = decomposition_report(dec, workload=wl, epsilon=0.5)
        bounds = report["bounds"]
        assert bounds["achieved"] == pytest.approx(dec.expected_noise_error(0.5))
        assert bounds["lemma3_upper"] > 0
        assert bounds["vs_noise_on_data"] > 0

    def test_column_budget_sane(self, fitted):
        _, dec = fitted
        budget = decomposition_report(dec)["column_budget"]
        assert 0 <= budget["saturated_fraction"] <= 1
        assert budget["max"] <= 1 + 1e-6

    def test_accepts_raw_matrix_workload(self, fitted):
        wl, dec = fitted
        report = decomposition_report(dec, workload=wl.matrix)
        assert "bounds" in report

    def test_rejects_non_decomposition(self):
        with pytest.raises(ValidationError):
            decomposition_report({"b": np.eye(2)})

    def test_epsilon_scaling(self, fitted):
        _, dec = fitted
        low = decomposition_report(dec, epsilon=1.0)["expected_noise_error"]
        high = decomposition_report(dec, epsilon=0.1)["expected_noise_error"]
        assert high == pytest.approx(100 * low)


class TestFormat:
    def test_contains_sections(self, fitted):
        wl, dec = fitted
        text = format_decomposition_report(dec, workload=wl)
        assert "residual ||W - BL||_F" in text
        assert "sensitivity Delta(L)" in text
        assert "bounds:" in text
        assert "residual trace" in text

    def test_without_workload_no_bounds(self, fitted):
        _, dec = fitted
        text = format_decomposition_report(dec)
        assert "bounds:" not in text
