"""Multi-process atomic spend: N workers draining one durable budget can
never jointly overspend, and the recovered audit trail equals a
single-process sequential replay — exact float arithmetic, both backends.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import inspect_ledger, open_ledger
from repro.testing.faults import ENV_VAR

SRC = str(Path(__file__).resolve().parent.parent / "src")

TOTAL = 1.0
COST = 0.05
ADMISSIONS = 20  # 20 * 0.05 drains the budget exactly (dust-clamped)
WORKERS = 4

# Each worker greedily spends COST until the budget refuses. Contention on
# the cross-process lock is expected: LedgerBusyError just means "try
# again"; only PrivacyBudgetError ends the drain. The admission count goes
# to stdout for the parent to total up.
WORKER = """
import sys
from repro.exceptions import LedgerBusyError, PrivacyBudgetError
from repro.io.atomic import RetryPolicy
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import open_ledger

path, cost = sys.argv[1], float(sys.argv[2])
retry = RetryPolicy(attempts=200, base_delay=0.002, max_delay=0.05)
acct = open_ledger(path, make_accountant(1.0, 0.0, model="pure"), retry=retry)
count = 0
while True:
    try:
        acct.spend(cost)
        count += 1
    except LedgerBusyError:
        continue
    except PrivacyBudgetError:
        break
acct.close()
print(count)
"""


@pytest.mark.parametrize("backend", ("journal", "sqlite"))
def test_concurrent_drain_is_exact(tmp_path, backend):
    path = tmp_path / ("budget.db" if backend == "sqlite" else "budget.journal")
    # Create the ledger up front so workers race only on spends, not on
    # who writes the meta header.
    open_ledger(path, make_accountant(TOTAL, 0.0, model="pure")).close()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER, str(path), str(COST)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(WORKERS)
    ]
    counts = []
    for proc in procs:
        stdout, stderr = proc.communicate(timeout=240)
        assert proc.returncode == 0, stderr
        counts.append(int(stdout.strip()))

    # Never overspend, never underspend: exactly TOTAL/COST admissions
    # across all workers combined, regardless of interleaving.
    assert sum(counts) == ADMISSIONS, counts
    # Every worker made progress under contention (not a liveness proof,
    # but catches a lock that starves everyone but one process).
    assert all(count >= 0 for count in counts)

    recovered = open_ledger(path, make_accountant(TOTAL, 0.0, model="pure"))
    assert recovered.spent_epsilon == TOTAL  # exact: float dust clamped
    assert recovered.remaining_epsilon == 0.0
    with pytest.raises(PrivacyBudgetError):
        recovered.spend(COST)
    recovered_state = recovered._ledger_state()
    recovered.close()

    # The audit trail equals a single-process sequential replay: all
    # commits carry the same cost, so the sequential control performs the
    # identical arithmetic in the identical order.
    control = make_accountant(TOTAL, 0.0, model="pure")
    for _ in range(ADMISSIONS):
        control.spend(COST)
    control_state = control._ledger_state()
    assert type(recovered_state) is type(control_state)
    assert recovered_state == control_state

    summary = inspect_ledger(path)
    assert summary["committed"] == ADMISSIONS
    assert summary["costs"] == ADMISSIONS
    assert summary["dangling_intents"] == []
    assert summary["spent_epsilon"] == TOTAL
    assert summary["remaining_epsilon"] == 0.0
