"""Serving hot-path tests: vectorised batch releases, compiled plans,
data epochs and parallel candidate ranking.

The RNG-stream contract under test: a batched release draws all its noise
in one ``(k, r)`` RNG call, so the stream *position* differs from ``k``
looped calls while every release's *distribution* (and all audit-log
contents) is identical. The exact-equality tests below therefore compare
against a manual replication of the batched draw, not against the loop.
"""

import numpy as np
import pytest

from repro.engine import PrivateQueryEngine, rank_mechanisms
from repro.engine.plan import build_plan
from repro.exceptions import ReproError, ValidationError
from repro.mechanisms.base import Mechanism
from repro.mechanisms.baselines import NoiseOnDataMechanism, NoiseOnResultsMechanism
from repro.mechanisms.registry import make_mechanism
from repro.privacy.noise import gaussian_noise_batch, laplace_noise_batch
from repro.workloads import wrange, wrelated

FAST_LRM = {"LRM": {"max_outer": 15, "max_inner": 3, "nesterov_iters": 15, "stall_iters": 5}}


def _engine(n=64, seed=7, **kwargs):
    kwargs.setdefault("mechanism_kwargs", FAST_LRM)
    return PrivateQueryEngine(np.arange(float(n)), total_budget=1e6, seed=seed, **kwargs)


# --------------------------------------------------------------------- #
# Mechanism.answer_many
# --------------------------------------------------------------------- #
class TestAnswerMany:
    @pytest.mark.parametrize("label", ["LM", "NOR", "SVDM", "WM", "HM"])
    def test_shape_and_finiteness(self, label):
        mechanism = make_mechanism(label).fit(wrange(6, 32, seed=0))
        out = mechanism.answer_many(np.arange(32.0), [0.1, 0.2, 0.5], rng=3)
        assert out.shape == (3, 6)
        assert np.all(np.isfinite(out))

    def test_operator_batch_matches_manual_draw(self):
        # The batched release is exactly B (L x + one (k, r) Laplace draw).
        workload = wrelated(8, 64, s=2, seed=1)
        mechanism = make_mechanism("SVDM").fit(workload)
        x = np.arange(64.0)
        epsilons = [0.1, 0.3, 0.7]
        got = mechanism.answer_many(x, epsilons, rng=11)

        operator = mechanism.release_operator()
        rng = np.random.default_rng(11)
        noise = laplace_noise_batch(
            operator.strategy.shape[0], operator.sensitivity, epsilons, rng
        )
        expected = (operator.strategy @ x + noise) @ operator.recombination.T
        assert np.array_equal(got, expected)

    def test_gaussian_operator_batch_matches_manual_draw(self):
        workload = wrange(6, 32, seed=0)
        mechanism = make_mechanism("GNOR", delta=1e-6).fit(workload)
        x = np.arange(32.0)
        epsilons = [0.2, 0.4]
        got = mechanism.answer_many(x, epsilons, rng=5)

        operator = mechanism.release_operator()
        rng = np.random.default_rng(5)
        noise = gaussian_noise_batch(
            workload.num_queries, operator.sensitivity, epsilons, 1e-6, rng
        )
        assert np.array_equal(got, workload.matrix @ x + noise)

    def test_wavelet_batch_matches_manual_block_draw(self):
        # WM's batched release is one (k, n) Laplace draw on the Haar
        # coefficients, one batched synthesis, one GEMM — exactly.
        from repro.linalg.haar import haar_analysis, haar_synthesis_rows
        from repro.privacy.noise import laplace_noise_batch

        workload = wrange(6, 32, seed=0)
        batch_mechanism = make_mechanism("WM").fit(workload)
        assert batch_mechanism.release_operator() is None
        x = np.arange(32.0)
        epsilons = [0.1, 0.5]
        got = batch_mechanism.answer_many(x, epsilons, rng=4)

        rng = np.random.default_rng(4)
        coefficients = haar_analysis(x)
        noise = laplace_noise_batch(
            coefficients.size, batch_mechanism.strategy_sensitivity, epsilons, rng
        )
        reconstructed = haar_synthesis_rows(coefficients[None, :] + noise)
        expected = reconstructed @ workload.matrix.T
        assert np.array_equal(got, expected)

    def test_hierarchical_batch_matches_manual_block_draw(self):
        # HM: one (k, 2n-1) draw on the tree nodes, one batched consistency
        # pass, one GEMM.
        from repro.linalg.trees import tree_apply, tree_consistency_rows
        from repro.privacy.noise import laplace_noise_batch

        workload = wrange(6, 32, seed=0)
        batch_mechanism = make_mechanism("HM").fit(workload)
        assert batch_mechanism.release_operator() is None
        x = np.arange(32.0)
        epsilons = [0.2, 0.9]
        got = batch_mechanism.answer_many(x, epsilons, rng=7)

        rng = np.random.default_rng(7)
        nodes = tree_apply(x)
        noise = laplace_noise_batch(
            nodes.size, batch_mechanism.strategy_sensitivity, epsilons, rng
        )
        estimates = tree_consistency_rows(nodes[None, :] + noise)
        expected = estimates @ workload.matrix.T
        assert np.array_equal(got, expected)

    def test_transform_batch_rows_distributed_like_single_answers(self):
        # Each batched WM row has the distribution of a standalone answer:
        # means converge on the exact answers at the single-release rate.
        workload = wrange(4, 16, seed=0)
        mechanism = make_mechanism("WM").fit(workload)
        x = np.arange(16.0)
        rows = mechanism.answer_many(x, np.full(3000, 1.0), rng=0)
        exact = workload.answer(x)
        assert np.allclose(rows.mean(axis=0), exact, atol=2.0)
        expected_total_var = mechanism.expected_squared_error(1.0)
        assert np.sum(rows.var(axis=0)) == pytest.approx(expected_total_var, rel=0.2)

    def test_rows_distributed_like_single_answers(self):
        # Mean over many batched LM releases converges on the exact
        # answers with the Laplace variance of a single release.
        workload = wrange(4, 16, seed=0)
        mechanism = make_mechanism("LM").fit(workload)
        x = np.arange(16.0)
        epsilon, k = 1.0, 4000
        rows = mechanism.answer_many(x, np.full(k, epsilon), rng=0)
        exact = workload.answer(x)
        assert np.allclose(rows.mean(axis=0), exact, atol=1.5)
        # Per-coordinate noise variance of LM answers: 2/eps^2 * row norms.
        expected_var = 2.0 / epsilon**2 * np.sum(workload.matrix**2, axis=1)
        assert np.allclose(rows.var(axis=0), expected_var, rtol=0.25)

    def test_scalar_epsilon_promotes_to_one_release(self):
        mechanism = make_mechanism("LM").fit(wrange(4, 16, seed=0))
        out = mechanism.answer_many(np.arange(16.0), 0.5, rng=1)
        assert out.shape == (1, 4)

    @pytest.mark.parametrize("bad", [[], [0.1, -0.2], [np.inf], [[0.1, 0.2]]])
    def test_invalid_epsilons_rejected(self, bad):
        mechanism = make_mechanism("LM").fit(wrange(4, 16, seed=0))
        with pytest.raises(ValidationError):
            mechanism.answer_many(np.arange(16.0), bad, rng=1)

    def test_empirical_error_runs_through_batch_path(self):
        # empirical_squared_error == the batched-draw computation, exactly.
        workload = wrange(4, 16, seed=0)
        mechanism = make_mechanism("LM").fit(workload)
        x = np.arange(16.0)
        got = mechanism.empirical_squared_error(x, 0.5, trials=7, rng=9)
        rows = mechanism.answer_many(x, np.full(7, 0.5), rng=9)
        residual = rows - workload.answer(x)[None, :]
        assert got == pytest.approx(float(np.sum(residual**2)) / 7)
        assert mechanism.empirical_average_error(x, 0.5, trials=7, rng=9) == pytest.approx(
            got / workload.num_queries
        )


# --------------------------------------------------------------------- #
# Batched execute_many vs looped execute
# --------------------------------------------------------------------- #
class TestBatchLoopEquivalence:
    def test_audit_identical_and_spend_bit_identical(self):
        workload = wrelated(8, 64, s=2, seed=1)
        epsilons = [0.1, 0.25, 0.1, 0.4, 0.1]

        loop_engine = _engine(seed=3)
        loop_plan = loop_engine.plan(workload, mechanism="LRM")
        loop_releases = [loop_engine.execute(loop_plan, eps) for eps in epsilons]

        batch_engine = _engine(seed=3)
        batch_plan = batch_engine.plan(workload, mechanism="LRM")
        batch_releases = batch_engine.execute_many([(batch_plan, eps) for eps in epsilons])

        # Bit-identical accounting: same costs, committed in-order.
        assert loop_engine.spent_budget == batch_engine.spent_budget
        for loop_release, batch_release in zip(loop_releases, batch_releases):
            assert loop_release.mechanism == batch_release.mechanism
            assert loop_release.epsilon == batch_release.epsilon
            assert loop_release.delta == batch_release.delta
            assert loop_release.expected_error == batch_release.expected_error
            assert loop_release.workload_key == batch_release.workload_key
            assert loop_release.metadata == batch_release.metadata
            assert loop_release.answers.shape == batch_release.answers.shape

    def test_batch_answers_match_manual_batched_draw(self):
        # Seeded execute_many is exactly reconstructible from the plan's
        # release operator and one batched draw from the engine's stream.
        workload = wrelated(8, 64, s=2, seed=1)
        engine = _engine(seed=5)
        plan = engine.plan(workload, mechanism="LRM")
        epsilons = [0.1, 0.2, 0.3]
        releases = engine.execute_many([(plan, eps) for eps in epsilons])

        operator = plan.mechanism.release_operator()
        rng = np.random.default_rng(5)
        noise = laplace_noise_batch(
            operator.strategy.shape[0], operator.sensitivity, epsilons, rng
        )
        expected = (
            operator.strategy @ np.arange(64.0) + noise
        ) @ operator.recombination.T
        for release, row in zip(releases, expected):
            assert np.array_equal(release.answers, row)

    def test_mixed_plans_group_in_first_seen_order(self):
        # Requests interleaving two plans release in request order while
        # the RNG stream advances plan-group by plan-group (A's batch draw,
        # then B's) — the documented stream contract.
        workload_a = wrange(6, 64, seed=0)
        workload_b = wrange(4, 64, seed=1)
        engine = _engine(seed=9)
        plan_a = engine.plan(workload_a, mechanism="LM")
        plan_b = engine.plan(workload_b, mechanism="LM")
        releases = engine.execute_many(
            [(plan_a, 0.1), (plan_b, 0.2), (plan_a, 0.3)]
        )
        assert [r.workload_key for r in releases] == [
            plan_a.workload_key, plan_b.workload_key, plan_a.workload_key,
        ]

        x = np.arange(64.0)
        rng = np.random.default_rng(9)
        noise_a = laplace_noise_batch(64, 1.0, [0.1, 0.3], rng)
        noise_b = laplace_noise_batch(64, 1.0, [0.2], rng)
        expected = [
            workload_a.matrix @ (x + noise_a[0]),
            workload_b.matrix @ (x + noise_b[0]),
            workload_a.matrix @ (x + noise_a[1]),
        ]
        for release, row in zip(releases, expected):
            assert np.allclose(release.answers, row)

    def test_batch_releases_do_not_alias(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        first, second = engine.execute_many([(plan, 0.1), (plan, 0.1)])
        before = second.answers.copy()
        first.answers[:] = -1.0
        assert np.array_equal(second.answers, before)

    def test_batch_rollback_leaves_no_trace(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        spent_before = engine.spent_budget

        def boom(*args, **kwargs):
            raise RuntimeError("mid-batch failure")

        operator = plan.compile()
        original = operator.answer_many
        operator.answer_many = boom
        try:
            with pytest.raises(RuntimeError):
                engine.execute_many([(plan, 0.1), (plan, 0.1)])
        finally:
            operator.answer_many = original
        assert engine.spent_budget == spent_before
        assert engine.releases == []

    def test_per_release_postprocess_switches_still_apply(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        plain, integral = engine.execute_many(
            [(plan, 0.5), (plan, 0.5, {"integral": True})]
        )
        assert not plain.metadata["postprocess"]["integral"]
        assert integral.metadata["postprocess"]["integral"]
        assert np.array_equal(integral.answers, np.round(integral.answers))


# --------------------------------------------------------------------- #
# Compiled plans and data epochs
# --------------------------------------------------------------------- #
class TestCompiledPlan:
    def test_repeated_execute_reuses_strategy_answers(self):
        engine = _engine()
        plan = engine.plan(wrelated(8, 64, s=2, seed=1), mechanism="LRM")
        compiled = plan.compile()
        assert plan.compile() is compiled  # memoized on the plan
        for _ in range(3):
            engine.execute(plan, 0.1)
        engine.execute_many([(plan, 0.1), (plan, 0.2)])
        assert compiled.strategy_evaluations == 1
        assert compiled.releases == 5
        assert compiled.batches == 1

    def test_set_data_invalidates_cached_strategy_answers(self):
        engine = _engine(n=64)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        compiled = plan.compile()
        engine.execute(plan, 0.5)
        assert compiled.strategy_evaluations == 1

        new_data = np.arange(64.0)[::-1].copy()
        engine.set_data(new_data)
        # Huge epsilon => negligible noise: the release must reflect the
        # new data, not a stale cached L x.
        release = engine.execute(plan, 1e5)
        assert compiled.strategy_evaluations == 2
        assert np.allclose(release.answers, plan.workload.answer(new_data), atol=1e-3)

    def test_set_data_rejects_domain_change(self):
        engine = _engine(n=64)
        with pytest.raises(ValidationError):
            engine.set_data(np.arange(32.0))

    def test_engine_copies_data_against_inplace_mutation(self):
        data = np.arange(64.0)
        engine = PrivateQueryEngine(data, total_budget=1e6, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        engine.execute(plan, 1e5)
        data[:] = 0.0  # caller mutates their array; the engine must not care
        release = engine.execute(plan, 1e5)
        assert np.allclose(release.answers, plan.workload.answer(np.arange(64.0)), atol=1e-3)

    def test_epochs_do_not_collide_across_engines(self):
        # Two engines with different data sharing one plan object (shared
        # cache) must never serve each other's cached strategy answers.
        from repro.engine.plan_cache import PlanCache

        cache = PlanCache()
        workload = wrange(6, 64, seed=0)
        data_a = np.arange(64.0)
        data_b = np.arange(64.0)[::-1].copy()
        engine_a = PrivateQueryEngine(data_a, total_budget=1e6, seed=0, plan_cache=cache)
        engine_b = PrivateQueryEngine(data_b, total_budget=1e6, seed=0, plan_cache=cache)
        plan = engine_a.plan(workload, mechanism="LM")
        assert engine_b.plan(workload, mechanism="LM") is plan
        release_a = engine_a.execute(plan, 1e5)
        release_b = engine_b.execute(plan, 1e5)
        assert np.allclose(release_a.answers, workload.answer(data_a), atol=1e-3)
        assert np.allclose(release_b.answers, workload.answer(data_b), atol=1e-3)

    def test_fallback_mechanism_keeps_exact_stream(self):
        # Operator-less plans forward to mechanism.answer: a seeded engine
        # release equals the mechanism's own seeded answer.
        workload = wrange(6, 64, seed=0)
        engine = _engine(seed=21)
        plan = engine.plan(workload, mechanism="WM")
        assert plan.compile().operator is None
        release = engine.execute(plan, 0.5)
        expected = plan.mechanism.answer(np.arange(64.0), 0.5, np.random.default_rng(21))
        assert np.array_equal(release.answers, expected)

    def test_compiling_does_not_move_seeded_stream(self):
        # execute through the compiled operator draws the same noise as the
        # mechanism's own answer() with the same seed (same RNG call shape).
        workload = wrelated(8, 64, s=2, seed=1)
        engine = _engine(seed=13)
        plan = engine.plan(workload, mechanism="LRM")
        release = engine.execute(plan, 0.25)
        expected = plan.mechanism.answer(np.arange(64.0), 0.25, np.random.default_rng(13))
        assert np.array_equal(release.answers, expected)


# --------------------------------------------------------------------- #
# Parallel candidate ranking
# --------------------------------------------------------------------- #
class TestParallelRanking:
    def test_parallel_matches_serial_ordering(self):
        workload = wrange(6, 32, seed=0)
        serial = rank_mechanisms(workload, 0.1, mechanism_kwargs=FAST_LRM)
        parallel = rank_mechanisms(workload, 0.1, mechanism_kwargs=FAST_LRM, parallel=True)
        assert [c.label for c in serial] == [c.label for c in parallel]
        for serial_choice, parallel_choice in zip(serial, parallel):
            if serial_choice.ok:
                assert parallel_choice.expected_error == pytest.approx(
                    serial_choice.expected_error
                )

    def test_parallel_plan_picks_same_mechanism(self):
        workload = wrelated(8, 64, s=2, seed=1)
        engine = _engine()
        serial_plan = engine.plan(workload, use_cache=False)
        parallel_plan = engine.plan(workload, use_cache=False, parallel=True)
        assert serial_plan.mechanism_label == parallel_plan.mechanism_label
        assert [c.label for c in serial_plan.candidates] == [
            c.label for c in parallel_plan.candidates
        ]

    def test_unpicklable_candidate_falls_back_to_serial(self):
        mechanism = NoiseOnDataMechanism()
        mechanism.unpicklable = lambda: None  # lambdas cannot pickle
        choices = rank_mechanisms(
            wrange(4, 16, seed=0), 0.1, candidates=[mechanism, "NOR"], parallel=True
        )
        assert len(choices) == 2
        assert all(choice.ok for choice in choices)

    def test_build_plan_threads_parallel_knob(self):
        plan = build_plan(
            wrange(4, 16, seed=0), mechanism="auto",
            candidates=("LM", "NOR"), parallel=2,
        )
        assert plan.mechanism_label in {"LM", "NOR"}


class TestRankMechanismsFixes:
    class _ExplodingMechanism(Mechanism):
        name = "BOOM"

        def _fit(self, workload):
            raise ReproError("deliberate fit failure")

        def _answer(self, x, epsilon, rng):  # pragma: no cover
            return np.zeros(1)

    def test_failed_candidates_keep_fit_seconds(self):
        choices = rank_mechanisms(
            wrange(4, 16, seed=0), 0.1,
            candidates=[self._ExplodingMechanism(), "LM"],
        )
        failed = next(choice for choice in choices if choice.failure is not None)
        assert failed.label == "BOOM"
        assert failed.fit_seconds is not None and failed.fit_seconds >= 0.0

    def test_failed_candidate_fit_seconds_reach_plan_table(self):
        plan = build_plan(
            wrange(4, 16, seed=0), mechanism="auto",
            candidates=[self._ExplodingMechanism(), "LM"],
        )
        failed = next(c for c in plan.candidates if c.failure is not None)
        assert failed.fit_seconds is not None

    def test_caller_kwargs_and_instances_never_touched(self):
        kwargs = {"LM": {"unit_sensitivity": 2.0}}
        snapshot = {"LM": dict(kwargs["LM"])}
        instance = NoiseOnResultsMechanism()
        rank_mechanisms(
            wrange(4, 16, seed=0), 0.1,
            candidates=[instance, "LM"], mechanism_kwargs=kwargs,
        )
        assert kwargs == snapshot
        assert not instance.is_fitted  # the ranked copy was fitted, not ours
