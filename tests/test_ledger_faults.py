"""Crash-recovery matrix: kill a real worker process at every registered
write-path failpoint and assert the ledger recovers to exactly the
pre-spend or post-spend state — bit-identically, with no third state.

The worker is a subprocess so the ``crash``/``torn`` actions genuinely
kill an interpreter mid-write (``os._exit`` between two instructions — the
in-process equivalent of ``kill -9``). Failpoints travel via the
``REPRO_FAILPOINTS`` environment variable and are parsed at import time in
the worker.

The matrix runs for the journal AND sqlite backends and for all three
accountant models (pure, basic composition, RDP), per the acceptance
criteria.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import inspect_ledger, open_ledger, recover_ledger
from repro.testing.faults import CRASH_EXIT_CODE, ENV_VAR, ledger_write_failpoints

SRC = str(Path(__file__).resolve().parent.parent / "src")

MODELS = {
    "pure": dict(total=1.0, total_delta=0.0, seed_cost=(0.1, 0.0), cost=(0.2, 0.0)),
    "basic": dict(total=1.0, total_delta=1e-5, seed_cost=(0.1, 1e-7), cost=(0.2, 2e-7)),
    "rdp": dict(total=1.0, total_delta=1e-5, seed_cost=(0.1, 1e-7), cost=(0.2, 1e-7)),
}

# The worker opens the ledger and attempts one spend; an armed failpoint
# kills it mid-protocol. Printing DONE proves a clean (unarmed) run.
WORKER = """
import sys
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import open_ledger

path, model, total, total_delta, eps, delta = sys.argv[1:7]
acct = open_ledger(path, make_accountant(float(total), float(total_delta), model=model))
acct.spend(float(eps), float(delta))
print("DONE")
"""


def run_worker(path, model, cost, failpoint=None, action="crash"):
    spec = MODELS[model]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if failpoint is not None:
        env[ENV_VAR] = f"{failpoint}={action}"
    else:
        env.pop(ENV_VAR, None)
    return subprocess.run(
        [
            sys.executable, "-c", WORKER,
            str(path), model, str(spec["total"]), str(spec["total_delta"]),
            str(cost[0]), str(cost[1]),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def fresh_accountant(model):
    spec = MODELS[model]
    return make_accountant(spec["total"], spec["total_delta"], model=model)


def ledger_state(path, model):
    acct = open_ledger(path, fresh_accountant(model))
    try:
        return acct._ledger_state()
    finally:
        acct.close()


def states_equal(left, right):
    if type(left) is not type(right):
        return False
    if isinstance(left, tuple):
        return len(left) == len(right) and all(
            states_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, np.ndarray):
        return left.dtype == right.dtype and np.array_equal(left, right)
    return left == right


def control_state(model, costs):
    """The bits an uninterrupted in-memory accountant lands on."""
    control = fresh_accountant(model)
    for cost in costs:
        control.spend(*cost)
    return control._ledger_state()


def _case_id(value):
    return str(value)


@pytest.mark.parametrize("backend", ("journal", "sqlite"))
@pytest.mark.parametrize("model", sorted(MODELS))
class TestCrashMatrix:
    def _setup_ledger(self, tmp_path, backend, model):
        path = tmp_path / ("budget.db" if backend == "sqlite" else "budget.journal")
        seed = MODELS[model]["seed_cost"]
        acct = open_ledger(path, fresh_accountant(model))
        acct.spend(*seed)
        acct.close()
        return path

    def test_clean_worker_commits(self, tmp_path, backend, model):
        path = self._setup_ledger(tmp_path, backend, model)
        result = run_worker(path, model, MODELS[model]["cost"])
        assert result.returncode == 0, result.stderr
        assert "DONE" in result.stdout
        spec = MODELS[model]
        post = control_state(model, [spec["seed_cost"], spec["cost"]])
        assert states_equal(ledger_state(path, model), post)

    def test_crash_at_every_failpoint_leaves_pre_or_post(self, tmp_path, backend, model):
        spec = MODELS[model]
        pre = control_state(model, [spec["seed_cost"]])
        post = control_state(model, [spec["seed_cost"], spec["cost"]])
        assert not states_equal(pre, post)
        for index, point in enumerate(ledger_write_failpoints(backend)):
            path = self._setup_ledger(tmp_path / f"cell{index}", backend, model)
            assert states_equal(ledger_state(path, model), pre)
            action = "torn" if point.endswith(".torn") else "crash"
            result = run_worker(path, model, spec["cost"], failpoint=point, action=action)
            assert result.returncode == CRASH_EXIT_CODE, (
                point,
                result.returncode,
                result.stderr,
            )
            # Recovery invariant: the reopened ledger replays to exactly
            # the pre-spend or the post-spend bits — never a third state.
            recovered = ledger_state(path, model)
            is_pre = states_equal(recovered, pre)
            is_post = states_equal(recovered, post)
            assert is_pre or is_post, (point, recovered)
            # The protocol's point of no return is the commit record: any
            # crash before it must recover to PRE; any crash after the
            # commit is durable must recover to POST.
            if point in (
                "ledger.intent.before_append",
                "ledger.intent.torn",
                "ledger.intent.after_append",
                "ledger.commit.before_append",
                "ledger.commit.torn",
                "sqlite.txn.before_commit",
            ):
                assert is_pre, point
            elif point in ("sqlite.txn.after_commit",):
                assert is_post, point
            elif backend == "journal" and point == "ledger.commit.after_append":
                assert is_post, point
            # (sqlite ledger.commit.after_append crashes before the txn
            # COMMIT, so it recovers to PRE — covered by the membership
            # assertion above.)
            if backend == "sqlite" and point == "ledger.commit.after_append":
                assert is_pre, point

            # ledger recover must be able to repair every crash residue
            # without changing the replayed state.
            summary = recover_ledger(path)
            assert summary["dangling_intents"] == []
            assert summary["torn_tail_bytes"] == 0
            assert states_equal(ledger_state(path, model), recovered)


@pytest.mark.parametrize("backend", ("journal", "sqlite"))
class TestKeyedCrashMatrix:
    """Kill a worker at every ledger write-path failpoint during a *keyed*
    execute. The exactly-once invariant: recovery lands on charged-with-
    replayable-result or uncharged-with-free-key — never a third state —
    and a retry of the same key always converges to exactly one charge."""

    KEYED_WORKER = """
import sys
import numpy as np
from repro.engine import PrivateQueryEngine
from repro.workloads import wrange

path = sys.argv[1]
engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0, ledger_path=path)
plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
release = engine.execute(plan, epsilon=0.2, request_key="K1")
print("DONE", float(release.answers[0]))
"""

    def _run_keyed_worker(self, path, failpoint, action):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[ENV_VAR] = f"{failpoint}={action}"
        return subprocess.run(
            [sys.executable, "-c", self.KEYED_WORKER, str(path)],
            env=env, capture_output=True, text=True, timeout=240,
        )

    def test_keyed_execute_crash_is_charged_or_free_never_torn(self, tmp_path, backend):
        from repro.engine import PrivateQueryEngine
        from repro.workloads import wrange

        suffix = "budget.db" if backend == "sqlite" else "budget.journal"
        for index, point in enumerate(ledger_write_failpoints(backend)):
            path = tmp_path / f"cell{index}" / suffix
            path.parent.mkdir()
            action = "torn" if point.endswith(".torn") else "crash"
            result = self._run_keyed_worker(path, point, action)
            assert result.returncode == CRASH_EXIT_CODE, (point, result.stderr)

            # Orphan reconciliation is definitive: after recover, a keyed
            # dangling intent is either gone (key freed) or was committed
            # (result replayable) — and recover says which.
            summary = recover_ledger(path)
            assert summary["dangling_intents"] == []
            engine = PrivateQueryEngine(
                np.arange(64.0), total_budget=1.0, seed=1, ledger_path=path
            )
            stored = engine.accountant.result_for("K1")
            charged = stored is not None
            if charged:
                # State A: the commit is durable — exactly one charge and
                # the stored release is replayable.
                assert summary["costs"] == 1, point
                assert summary["freed_keys"] == [], point
            else:
                # State B: nothing charged; if the intent had landed, the
                # recover freed its key for retry.
                assert summary["costs"] == 0, point
                assert engine.accountant.spent_epsilon == 0.0, point
                assert all(key == "K1" for key in summary["freed_keys"]), point

            # The retry converges both states to exactly one charge.
            plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
            retried = engine.execute(plan, epsilon=0.2, request_key="K1")
            assert engine.accountant.spent_epsilon == pytest.approx(0.2), point
            if charged:
                assert retried.metadata.get("deduplicated") is True, point
                assert retried.answers.tolist() == stored["values"], point
            # And replaying the key once more is bit-identical, charge-free.
            replayed = engine.execute(plan, epsilon=0.2, request_key="K1")
            assert replayed.answers.tolist() == retried.answers.tolist(), point
            assert engine.accountant.spent_epsilon == pytest.approx(0.2), point


class TestEngineCrashRecovery:
    """Kill an engine worker mid-batch; the reopened engine's realized
    (eps, delta) audit trail must match an uninterrupted control run."""

    ENGINE_WORKER = """
import sys
import numpy as np
from repro.engine import PrivateQueryEngine
from repro.workloads import wrange
from repro.testing.faults import failpoints

path = sys.argv[1]
engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0, ledger_path=path)
plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
release = engine.execute(plan, epsilon=0.1)
print("SEEDED", release.metadata["realized"])
failpoints.arm("ledger.commit.torn", "torn")
engine.execute_many([(plan, 0.2), (plan, 0.05)])
print("UNREACHABLE")
"""

    def test_kill_mid_batch_then_reopen(self, tmp_path):
        path = tmp_path / "budget.journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(ENV_VAR, None)
        result = subprocess.run(
            [sys.executable, "-c", self.ENGINE_WORKER, str(path)],
            env=env, capture_output=True, text=True, timeout=240,
        )
        assert result.returncode == CRASH_EXIT_CODE, result.stderr
        assert "SEEDED" in result.stdout
        assert "UNREACHABLE" not in result.stdout

        # The torn batch commit was never acknowledged: only the seeded
        # release survives the crash.
        from repro.engine import PrivateQueryEngine
        from repro.workloads import wrange

        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=0, ledger_path=path
        )
        assert engine.accountant.spent_epsilon == 0.1
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        releases = engine.execute_many([(plan, 0.2), (plan, 0.05)])

        # Control: the same sequence without the crash, on its own ledger.
        control = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=0,
            ledger_path=tmp_path / "control.journal",
        )
        control_plan = control.plan(wrange(6, 64, seed=0), mechanism="LM")
        control.execute(control_plan, epsilon=0.1)
        expected = control.execute_many([(control_plan, 0.2), (control_plan, 0.05)])
        assert [r.metadata["realized"] for r in releases] == [
            r.metadata["realized"] for r in expected
        ]
        assert engine.accountant.spent_epsilon == control.accountant.spent_epsilon
