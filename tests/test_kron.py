"""Unit tests for the Kronecker-factored LRM."""

import numpy as np
import pytest

from repro.core.kron import KronLowRankMechanism, kron_apply
from repro.exceptions import NotFittedError, ValidationError
from repro.privacy.sensitivity import l1_sensitivity
from repro.workloads import Workload, total_workload, wrange, wrelated

FAST = {"max_outer": 20, "max_inner": 4, "nesterov_iters": 20, "stall_iters": 6}


class TestKronApply:
    def test_matches_dense_kron(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))
        c = rng.standard_normal((2, 5))
        x = rng.standard_normal(20)
        assert np.allclose(kron_apply(a, c, x), np.kron(a, c) @ x)

    def test_identity_factors(self):
        x = np.arange(6.0)
        assert np.allclose(kron_apply(np.eye(2), np.eye(3), x), x)

    def test_size_check(self):
        with pytest.raises(ValidationError):
            kron_apply(np.eye(2), np.eye(3), np.ones(5))


class TestCompositionIdentities:
    def test_sensitivity_multiplies(self):
        rng = np.random.default_rng(1)
        l1 = rng.standard_normal((2, 4))
        l2 = rng.standard_normal((3, 5))
        assert l1_sensitivity(np.kron(l1, l2)) == pytest.approx(
            l1_sensitivity(l1) * l1_sensitivity(l2)
        )

    def test_scale_multiplies(self):
        rng = np.random.default_rng(2)
        b1 = rng.standard_normal((4, 2))
        b2 = rng.standard_normal((5, 3))
        assert np.sum(np.kron(b1, b2) ** 2) == pytest.approx(
            np.sum(b1**2) * np.sum(b2**2)
        )

    def test_product_decomposition_reconstructs(self):
        rng = np.random.default_rng(3)
        b1, l1 = rng.standard_normal((4, 2)), rng.standard_normal((2, 6))
        b2, l2 = rng.standard_normal((3, 2)), rng.standard_normal((2, 5))
        left = np.kron(b1 @ l1, b2 @ l2)
        right = np.kron(b1, b2) @ np.kron(l1, l2)
        assert np.allclose(left, right)


class TestKronMechanism:
    @pytest.fixture(scope="class")
    def fitted(self):
        w1 = wrelated(6, 12, s=2, seed=0)
        w2 = wrange(5, 8, seed=1)
        return KronLowRankMechanism(**FAST).fit(w1, w2)

    def test_shapes(self, fitted):
        assert fitted.domain_size == 96
        assert fitted.num_queries == 30

    def test_answer_shape(self, fitted):
        answer = fitted.answer(np.ones(96), 1.0, rng=0)
        assert answer.shape == (30,)

    def test_exact_answer_matches_dense(self, fitted):
        x = np.arange(96.0)
        dense = fitted.as_workload()
        assert np.allclose(fitted.exact_answer(x), dense.answer(x))

    def test_unbiased(self, fitted):
        x = np.arange(96.0)
        rng = np.random.default_rng(4)
        mean_answer = np.mean([fitted.answer(x, 1.0, rng) for _ in range(3000)], axis=0)
        exact = fitted.exact_answer(x)
        tolerance = 0.05 * np.abs(exact).max() + 5
        assert np.allclose(mean_answer, exact, atol=tolerance)

    def test_expected_error_matches_composite_formula(self, fitted):
        dec1, dec2 = fitted.factor_decompositions
        expected = (
            2.0
            * dec1.scale
            * dec2.scale
            * (dec1.sensitivity * dec2.sensitivity) ** 2
        )
        assert fitted.expected_squared_error(1.0) == pytest.approx(expected)

    def test_empirical_matches_analytic(self, fitted):
        x = np.ones(96) * 10
        rng = np.random.default_rng(5)
        exact = fitted.exact_answer(x)
        total = 0.0
        trials = 2000
        for _ in range(trials):
            residual = fitted.answer(x, 1.0, rng) - exact
            total += residual @ residual
        assert total / trials == pytest.approx(fitted.expected_squared_error(1.0), rel=0.15)

    def test_factored_beats_naive_nod_on_product(self):
        # Composite efficiency multiplies factor efficiencies, so use two
        # factors that are individually in LRM's favourable (low-rank,
        # wide) regime; the product advantage then compounds.
        w1 = wrelated(8, 64, s=1, seed=2)
        w2 = wrelated(6, 48, s=1, seed=3)
        mech = KronLowRankMechanism(**FAST).fit(w1, w2)
        nod_error = 2.0 * w1.frobenius_squared * w2.frobenius_squared
        assert mech.expected_squared_error(1.0) < nod_error

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            KronLowRankMechanism().answer(np.ones(4), 1.0)

    def test_materialisation_guard(self, fitted):
        with pytest.raises(ValidationError, match="max_entries"):
            fitted.as_workload(max_entries=10)

    def test_total_by_total_is_grand_total(self):
        mech = KronLowRankMechanism(**FAST).fit(total_workload(3), total_workload(4))
        x = np.arange(12.0)
        assert mech.exact_answer(x)[0] == pytest.approx(x.sum())
