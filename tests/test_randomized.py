"""Unit tests for the randomized spectral kernels (repro.linalg.randomized)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.randomized import (
    RANDOMIZED_SVD_MIN_DIM,
    power_iteration_lmax,
    randomized_svd,
)


def _low_rank(m, n, rank, seed, decay=0.5):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, rank)))
    v, _ = np.linalg.qr(rng.standard_normal((n, rank)))
    sigma = 10.0 * decay ** np.arange(rank)
    return (u * sigma) @ v.T


class TestRandomizedSvd:
    def test_exact_on_low_rank_matrix(self):
        # Rank-8 matrix, sketch well past the rank: reconstruction is exact.
        w = _low_rank(300, 400, 8, seed=0)
        u, sigma, vt = randomized_svd(w, rank=12, rng=0, min_dim=50)
        assert np.allclose((u * sigma) @ vt, w, atol=1e-8)

    def test_singular_values_match_exact(self):
        w = _low_rank(250, 300, 10, seed=1)
        _, sigma, _ = randomized_svd(w, rank=10, rng=0, min_dim=50)
        exact = np.linalg.svd(w, compute_uv=False)[:10]
        np.testing.assert_allclose(sigma, exact, rtol=1e-8)

    def test_full_rank_matrix_near_optimal(self):
        # On a full-rank matrix the sketch must approach the Eckart-Young
        # optimum: residual within a few percent of the exact truncation.
        rng = np.random.default_rng(2)
        w = rng.standard_normal((260, 300))
        k = 20
        u, sigma, vt = randomized_svd(w, rank=k, rng=0, min_dim=50, n_iter=6)
        exact = np.linalg.svd(w, compute_uv=False)
        optimal = float(np.sqrt(np.sum(exact[k:] ** 2)))
        achieved = float(np.linalg.norm(w - (u * sigma) @ vt))
        assert achieved <= 1.05 * optimal

    def test_seed_determinism(self):
        w = _low_rank(250, 280, 12, seed=3)
        a = randomized_svd(w, rank=12, rng=42, min_dim=50)
        b = randomized_svd(w, rank=12, rng=42, min_dim=50)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_fallback_below_threshold_is_exact_lapack(self):
        # Small matrix: the result must be the exact LAPACK factors
        # regardless of rng (proof that the sketch path was not taken).
        w = _low_rank(40, 60, 5, seed=4)
        u1, s1, vt1 = randomized_svd(w, rank=5, rng=0)
        u2, s2, vt2 = randomized_svd(w, rank=5, rng=123)
        assert np.array_equal(s1, s2)
        assert np.array_equal(u1, u2)
        exact = np.linalg.svd(w, compute_uv=False)[:5]
        np.testing.assert_allclose(s1, exact, rtol=1e-12)

    def test_fallback_when_rank_covers_small_dimension(self):
        # Sketch would span most of min(m, n): exact path, rng-independent.
        w = _low_rank(300, 210, 40, seed=5)
        s1 = randomized_svd(w, rank=200, rng=0, min_dim=50)[1]
        s2 = randomized_svd(w, rank=200, rng=7, min_dim=50)[1]
        assert np.array_equal(s1, s2)
        assert s1.size == 200

    def test_shapes_truncated_to_rank(self):
        w = _low_rank(230, 260, 9, seed=6)
        u, sigma, vt = randomized_svd(w, rank=9, rng=0, min_dim=50)
        assert u.shape == (230, 9)
        assert sigma.shape == (9,)
        assert vt.shape == (9, 260)

    def test_default_threshold_constant(self):
        assert RANDOMIZED_SVD_MIN_DIM >= 64

    def test_invalid_n_iter(self):
        with pytest.raises(ValidationError):
            randomized_svd(np.eye(4), rank=2, n_iter=-1)


class TestPowerIterationLmax:
    def test_agrees_with_eigvalsh(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            a = rng.standard_normal((30, 30))
            gram = a @ a.T
            expected = float(np.linalg.eigvalsh(gram)[-1])
            lmax, _ = power_iteration_lmax(gram, tol=1e-12, max_iters=5000)
            np.testing.assert_allclose(lmax, expected, rtol=1e-6)

    def test_warm_start_converges_fast(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((25, 25))
        gram = a @ a.T
        _, v = power_iteration_lmax(gram, tol=1e-12, max_iters=5000)
        # Perturb the matrix slightly; the warm start should land within
        # tolerance in very few iterations.
        gram2 = gram + 1e-6 * np.eye(25)
        lmax2, _ = power_iteration_lmax(gram2, v0=v, tol=1e-10, max_iters=8)
        expected = float(np.linalg.eigvalsh(gram2)[-1])
        np.testing.assert_allclose(lmax2, expected, rtol=1e-6)

    def test_eigenvector_returned(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((12, 12))
        gram = a @ a.T
        lmax, v = power_iteration_lmax(gram, tol=1e-13, max_iters=10000)
        np.testing.assert_allclose(gram @ v, lmax * v, rtol=1e-4, atol=1e-8)

    def test_zero_matrix(self):
        lmax, v = power_iteration_lmax(np.zeros((5, 5)))
        assert lmax == 0.0
        assert v.shape == (5,)

    def test_diagonal_matrix(self):
        gram = np.diag([1.0, 4.0, 9.0])
        lmax, _ = power_iteration_lmax(gram, tol=1e-13, max_iters=10000)
        np.testing.assert_allclose(lmax, 9.0, rtol=1e-8)

    def test_invalid_warm_start_ignored(self):
        gram = np.diag([1.0, 2.0])
        lmax, _ = power_iteration_lmax(gram, v0=np.zeros(2), tol=1e-13)
        np.testing.assert_allclose(lmax, 2.0, rtol=1e-8)

    def test_non_square_raises(self):
        with pytest.raises(ValidationError):
            power_iteration_lmax(np.ones((3, 4)))
