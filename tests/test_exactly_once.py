"""Exactly-once releases: the idempotency-key path end to end.

Layer by layer:

* **Ledger** — ``spend_keyed`` charges each key at most once, journals the
  produced result durably (checksummed like every record), replays it
  bit-identically across accountant instances, frees the key when produce
  fails, and keeps the dedup index through checkpoint compaction and
  ``recover_ledger`` (including ``--dry-run``'s non-mutating orphan
  report).
* **Engine** — ``execute(..., request_key=...)`` returns the original
  release (flagged ``deduplicated``) on a repeat, across engine
  instances sharing one ledger.
* **Coalescer** — an in-window duplicate key folds onto one dispatched
  request (one spend, two replies); the flush order round-robins across
  ``(tenant, plan)`` groups so a hot tenant cannot starve a quiet one.
* **Clients** — both stamp auto-generated keys, and the busy backoff
  re-reads each refusal's ``retry_after`` clamped to the remaining
  ``max_busy_wait`` window.
* **Service drills** — a worker SIGKILLed *after* the spend but before
  the reply (``serving.worker.before_reply``) and replies dropped on the
  wire (``serving.conn.drop``) both converge to exactly one charge and
  bit-identical replies, with ``health`` dedup counters ticking.
"""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.engine import PrivateQueryEngine
from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import (
    inspect_ledger,
    open_ledger,
    recover_ledger,
)
from repro.serving import (
    AsyncServiceClient,
    Coalescer,
    PlanService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.testing.faults import InjectedFault, failpoints
from repro.workloads import prefix_workload, wrange, wrelated

N = 32


@pytest.fixture(scope="module")
def plans_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("plans")
    for name, workload in (
        ("related", wrelated(8, N, s=2, seed=1)),
        ("prefix", prefix_workload(N)),
    ):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, directory / f"{name}.plan.npz")
    return directory


@pytest.fixture
def data():
    return np.arange(float(N))


def _acct(path, **kwargs):
    return open_ledger(path, make_accountant(2.0, 0.0, model="pure"), **kwargs)


def _payload(tag):
    return {"values": [1.25, -2.5], "tag": tag}


def _spend_one(acct, key, epsilon=0.1, tag="first"):
    return acct.spend_keyed(
        [((epsilon, 0.0), key)],
        lambda positions, realized: [_payload(tag) for _ in positions],
    )[0]


# --------------------------------------------------------------------- #
# Ledger: spend_keyed semantics
# --------------------------------------------------------------------- #
class TestLedgerKeyedSpend:
    def test_duplicate_key_replays_without_second_charge(self, tmp_path):
        path = tmp_path / "budget.journal"
        acct = _acct(path)
        result, deduped = _spend_one(acct, "K1")
        assert not deduped and result == _payload("first")
        assert acct.spent_epsilon == pytest.approx(0.1)

        # Same instance: the repeat replays the stored result, charge-free,
        # even though produce would have returned something else.
        replay, deduped = _spend_one(acct, "K1", tag="second")
        assert deduped and replay == _payload("first")
        assert acct.spent_epsilon == pytest.approx(0.1)
        assert acct.dedup_hits == 1
        acct.close()

        # Fresh instance (full process restart): the result journal is
        # durable, so the replay is still bit-identical and charge-free.
        reopened = _acct(path)
        assert reopened.result_for("K1") == _payload("first")
        replay, deduped = _spend_one(reopened, "K1", tag="third")
        assert deduped and replay == _payload("first")
        assert reopened.spent_epsilon == pytest.approx(0.1)
        reopened.close()

    def test_batch_mixes_hits_in_batch_dups_fresh_and_unkeyed(self, tmp_path):
        acct = _acct(tmp_path / "budget.journal")
        _spend_one(acct, "OLD", tag="old")
        outcomes = acct.spend_keyed(
            [
                ((0.1, 0.0), "OLD"),   # dedup hit
                ((0.1, 0.0), "NEW"),   # fresh
                ((0.1, 0.0), "NEW"),   # in-batch duplicate of the fresh one
                ((0.1, 0.0), None),    # unkeyed: always charged
            ],
            lambda positions, realized: [_payload(f"p{p}") for p in positions],
        )
        assert [d for _, d in outcomes] == [True, False, True, False]
        assert outcomes[0][0] == _payload("old")
        assert outcomes[1][0] == outcomes[2][0]  # one spend, two replies
        # Charged: OLD once (earlier) + NEW once + unkeyed once.
        assert acct.spent_epsilon == pytest.approx(0.3)
        acct.close()

    def test_produce_failure_frees_the_key(self, tmp_path):
        acct = _acct(tmp_path / "budget.journal")

        def exploding(positions, realized):
            raise RuntimeError("noise sampler died")

        with pytest.raises(RuntimeError):
            acct.spend_keyed([((0.1, 0.0), "K1")], exploding)
        assert acct.spent_epsilon == 0.0
        assert acct.result_for("K1") is None
        # The key is free: the retry charges exactly once.
        result, deduped = _spend_one(acct, "K1", tag="retry")
        assert not deduped and result == _payload("retry")
        assert acct.spent_epsilon == pytest.approx(0.1)
        acct.close()

    def test_compaction_preserves_dedup_index(self, tmp_path):
        path = tmp_path / "budget.journal"
        acct = _acct(path, compact_every=6)
        for index in range(6):
            _spend_one(acct, f"K{index}", epsilon=0.05, tag=f"t{index}")
        # Enough records passed the threshold that at least one checkpoint
        # rewrite ran; the stream is now compacted.
        summary = inspect_ledger(path)
        assert summary["costs"] == 6
        assert summary["keyed_results"] == 6
        acct.close()

        reopened = _acct(path)
        for index in range(6):
            replay, deduped = _spend_one(reopened, f"K{index}", tag="again")
            assert deduped and replay == _payload(f"t{index}")
        assert reopened.spent_epsilon == pytest.approx(0.3)
        reopened.close()

    def test_recover_preserves_results_and_reconciles_orphans(self, tmp_path):
        path = tmp_path / "budget.journal"
        acct = _acct(path)
        _spend_one(acct, "COMMITTED", tag="kept")
        # Leave a dangling *keyed* intent on disk: the injected fault fires
        # between the intent append and the commit append, so the charge
        # never committed and the key must come back free.
        with failpoints.active("ledger.commit.before_append", "error"):
            with pytest.raises(InjectedFault):
                _spend_one(acct, "ORPHAN", tag="lost")
        acct.close()

        before = path.read_bytes()
        report = recover_ledger(path, dry_run=True)
        assert report["dry_run"] is True
        assert report["reconciled_orphans"] == 1
        assert report["freed_keys"] == ["ORPHAN"]
        assert path.read_bytes() == before  # dry run never mutates

        report = recover_ledger(path)
        assert report["dry_run"] is False
        assert report["reconciled_orphans"] == 1
        assert report["freed_keys"] == ["ORPHAN"]
        assert report["dangling_intents"] == []

        reopened = _acct(path)
        # Committed keyed result survived the rewrite; the orphaned key is
        # definitively free and charges exactly once on retry.
        replay, deduped = _spend_one(reopened, "COMMITTED", tag="other")
        assert deduped and replay == _payload("kept")
        result, deduped = _spend_one(reopened, "ORPHAN", tag="retried")
        assert not deduped and result == _payload("retried")
        assert reopened.spent_epsilon == pytest.approx(0.2)
        reopened.close()


# --------------------------------------------------------------------- #
# CLI: ledger recover --dry-run
# --------------------------------------------------------------------- #
class TestRecoverDryRunCLI:
    def test_dry_run_reports_without_mutating(self, tmp_path, capsys):
        path = tmp_path / "budget.journal"
        acct = _acct(path)
        _spend_one(acct, "GOOD", tag="kept")
        with failpoints.active("ledger.commit.before_append", "error"):
            with pytest.raises(InjectedFault):
                _spend_one(acct, "LOST", tag="lost")
        acct.close()
        before = path.read_bytes()

        code = cli_main(["ledger", "recover", "--ledger", str(path), "--dry-run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dry run" in out and "left untouched" in out
        assert "would reconcile 1" in out
        assert "LOST" in out
        assert "re-run without --dry-run" in out
        assert path.read_bytes() == before

        code = cli_main(["ledger", "recover", "--ledger", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered" in out and "reconciled 1" in out
        assert path.read_bytes() != before  # compacted for real this time


# --------------------------------------------------------------------- #
# Engine: request_key on execute / execute_many
# --------------------------------------------------------------------- #
class TestEngineKeyedExecute:
    def test_repeat_key_is_bit_identical_across_engines(self, tmp_path):
        path = tmp_path / "budget.journal"
        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=5, ledger_path=path
        )
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        first = engine.execute(plan, epsilon=0.2, request_key="REQ")
        assert not first.metadata.get("deduplicated")

        again = engine.execute(plan, epsilon=0.2, request_key="REQ")
        assert again.metadata.get("deduplicated") is True
        assert again.answers.tolist() == first.answers.tolist()

        # A different seed cannot matter: the replay comes from the
        # journal, not from a fresh noise draw.
        other = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=99, ledger_path=path
        )
        other_plan = other.plan(wrange(6, 64, seed=0), mechanism="LM")
        replay = other.execute(other_plan, epsilon=0.2, request_key="REQ")
        assert replay.metadata.get("deduplicated") is True
        assert replay.answers.tolist() == first.answers.tolist()
        assert other.accountant.spent_epsilon == pytest.approx(0.2)

    def test_execute_many_accepts_keyed_four_tuples(self, tmp_path):
        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=5,
            ledger_path=tmp_path / "budget.journal",
        )
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        a, b, c = engine.execute_many([
            (plan, 0.1, {}, "A"),
            (plan, 0.1, {}, "A"),   # in-batch duplicate
            (plan, 0.1, {}, None),  # opted out
        ])
        assert a.answers.tolist() == b.answers.tolist()
        assert b.metadata.get("deduplicated") is True
        assert not c.metadata.get("deduplicated")
        assert engine.accountant.spent_epsilon == pytest.approx(0.2)

    def test_unkeyed_engine_without_ledger_still_dedups_in_memory(self):
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=5)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        first = engine.execute(plan, epsilon=0.2, request_key="MEM")
        again = engine.execute(plan, epsilon=0.2, request_key="MEM")
        assert again.metadata.get("deduplicated") is True
        assert again.answers.tolist() == first.answers.tolist()
        assert engine.accountant.spent_epsilon == pytest.approx(0.2)


# --------------------------------------------------------------------- #
# Coalescer: in-window folding + round-robin fairness
# --------------------------------------------------------------------- #
class _RecordingPool:
    def __init__(self):
        self.commands = []

    def submit(self, command, timeout=None, retry_delivered=False):
        self.commands.append((command, retry_delivered))
        _, tenant, plan, requests = command
        return ("ok", [{"epsilon": req[0], "n": len(self.commands)} for req in requests])


class TestCoalescerFolding:
    def test_same_key_in_window_folds_to_one_dispatch(self):
        async def scenario():
            pool = _RecordingPool()
            coalescer = Coalescer(pool, max_batch=10, max_wait=0.02)
            results = await asyncio.gather(
                coalescer.submit("alice", "related", 0.01, key="K"),
                coalescer.submit("alice", "related", 0.01, key="K"),
                coalescer.submit("alice", "related", 0.02, key="OTHER"),
            )
            return pool, coalescer, results

        pool, coalescer, results = asyncio.run(scenario())
        assert len(pool.commands) == 1
        command, retry_delivered = pool.commands[0]
        # Two K submissions became ONE dispatched request.
        assert len(command[3]) == 2
        assert coalescer.duplicates_folded == 1
        # Both K waiters got the same payload; OTHER got its own.
        assert results[0] == results[1]
        assert results[2] != results[0]
        # Fully-keyed batch: dispatched crash-retryable.
        assert retry_delivered is True

    def test_unkeyed_batch_is_not_marked_retryable(self):
        async def scenario():
            pool = _RecordingPool()
            coalescer = Coalescer(pool, max_batch=10, max_wait=0.01)
            await asyncio.gather(
                coalescer.submit("alice", "related", 0.01, key="K"),
                coalescer.submit("alice", "related", 0.01),  # unkeyed
            )
            return pool

        pool = asyncio.run(scenario())
        assert pool.commands[0][1] is False  # one unkeyed member poisons it


class _GatedPool:
    """Blocks every dispatch on a gate so the test controls completion
    order; records dispatch order by tenant."""

    def __init__(self):
        self.commands = []
        self.gate = threading.Event()

    def submit(self, command, timeout=None, retry_delivered=False):
        self.commands.append(command)
        self.gate.wait(10.0)
        _, tenant, plan, requests = command
        return ("ok", [{"epsilon": req[0]} for req in requests])


class TestCoalescerFairness:
    def test_cold_tenant_not_starved_by_hot_backlog(self):
        async def scenario():
            pool = _GatedPool()
            coalescer = Coalescer(
                pool, max_batch=2, max_wait=0.01, max_concurrent=1
            )
            tasks = [
                asyncio.ensure_future(coalescer.submit("hot", "p", 0.01))
                for _ in range(2)
            ]
            await asyncio.sleep(0.05)  # hot batch 1 dispatched, gated
            # A backlog of two more full hot buckets queues up...
            tasks += [
                asyncio.ensure_future(coalescer.submit("hot", "p", 0.01))
                for _ in range(4)
            ]
            # ...and then ONE cold request arrives behind them.
            tasks.append(
                asyncio.ensure_future(coalescer.submit("cold", "p", 0.02))
            )
            await asyncio.sleep(0.05)  # cold's window timer flushed it
            pool.gate.set()
            await asyncio.gather(*tasks)
            return pool

        pool = asyncio.run(scenario())
        order = [command[1] for command in pool.commands]
        assert len(order) == 4
        # Round-robin: the cold tenant dispatches right after the hot
        # in-flight batch finishes, ahead of the queued hot backlog —
        # FIFO order would have been hot, hot, hot, cold.
        assert order[:2] == ["hot", "cold"]


# --------------------------------------------------------------------- #
# Clients: auto-keys + per-refusal busy backoff clamped to the window
# --------------------------------------------------------------------- #
def _key_capture_server():
    """Threaded stub answering every request OK while recording the
    ``key`` field; returns (port, keys, stop)."""
    import socket as socket_module
    import threading as threading_module

    listener = socket_module.create_server(("127.0.0.1", 0))
    listener.settimeout(0.2)
    stopping = threading_module.Event()
    keys = []

    def serve():
        while not stopping.is_set():
            try:
                conn, _ = listener.accept()
            except socket_module.timeout:
                continue
            except OSError:
                return
            with conn:
                fh = conn.makefile("rwb")
                while not stopping.is_set():
                    line = fh.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    keys.append(request.get("key"))
                    payload = {"ok": True, "release": {"values": [1.0]}}
                    if request.get("id") is not None:
                        payload["id"] = request["id"]
                    fh.write(json.dumps(payload).encode() + b"\n")
                    fh.flush()

    thread = threading_module.Thread(target=serve, daemon=True)
    thread.start()

    def stop():
        stopping.set()
        listener.close()
        thread.join(timeout=2)

    return listener.getsockname()[1], keys, stop


class TestClientKeysAndBackoff:
    def test_blocking_client_stamps_fresh_keys(self):
        port, keys, stop = _key_capture_server()
        try:
            client = ServiceClient("127.0.0.1", port, timeout=5.0)
            client.execute("alice", "related", 0.01)
            client.execute("alice", "related", 0.01)
            client.execute("alice", "related", 0.01, key="MINE")
            client.execute("alice", "related", 0.01, key=False)
            client.close()
        finally:
            stop()
        auto_a, auto_b, explicit, opted_out = keys
        # Auto-generated: fresh 32-hex per call, never reused.
        assert auto_a != auto_b
        for key in (auto_a, auto_b):
            assert isinstance(key, str) and len(key) == 32
            int(key, 16)
        assert explicit == "MINE"
        assert opted_out is None  # key=False sends no key at all

    def test_async_client_stamps_fresh_keys(self):
        port, keys, stop = _key_capture_server()
        try:
            async def scenario():
                client = await AsyncServiceClient.connect("127.0.0.1", port)
                try:
                    await client.execute("alice", "related", 0.01)
                    await client.execute("alice", "related", 0.01, key="MINE")
                    await client.execute("alice", "related", 0.01, key=False)
                finally:
                    await client.close()

            asyncio.run(scenario())
        finally:
            stop()
        auto, explicit, opted_out = keys
        assert isinstance(auto, str) and len(auto) == 32
        assert explicit == "MINE"
        assert opted_out is None

    def test_busy_backoff_clamps_to_remaining_window(self):
        # An oversized retry_after hint must not abort retrying while
        # max_busy_wait budget remains: the sleep clamps to the window.
        import socket as socket_module
        import threading as threading_module

        listener = socket_module.create_server(("127.0.0.1", 0))
        listener.settimeout(0.2)
        stopping = threading_module.Event()
        counters = {"requests": 0}

        def serve():
            while not stopping.is_set():
                try:
                    conn, _ = listener.accept()
                except socket_module.timeout:
                    continue
                except OSError:
                    return
                with conn:
                    fh = conn.makefile("rwb")
                    while not stopping.is_set():
                        line = fh.readline()
                        if not line:
                            break
                        counters["requests"] += 1
                        fh.write(json.dumps({
                            "ok": False, "error": "overloaded",
                            "message": "queue full", "retry_after": 30.0,
                        }).encode() + b"\n")
                        fh.flush()

        thread = threading_module.Thread(target=serve, daemon=True)
        thread.start()
        try:
            port = listener.getsockname()[1]
            client = ServiceClient("127.0.0.1", port, timeout=5.0, max_busy_wait=0.3)
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.execute("alice", "related", 0.01)
            elapsed = time.monotonic() - started
            client.close()
            assert excinfo.value.kind == "overloaded"
            # The 30 s hint was clamped: the client retried at least once
            # inside the 0.3 s window instead of surrendering immediately.
            assert counters["requests"] >= 2
            assert 0.25 <= elapsed < 5.0
        finally:
            stopping.set()
            listener.close()
            thread.join(timeout=2)


# --------------------------------------------------------------------- #
# Service drills: post-spend worker kill and dropped replies
# --------------------------------------------------------------------- #
class TestServiceExactlyOnceDrills:
    def test_worker_killed_before_reply_replays_once_charged(
        self, plans_dir, data, tmp_path
    ):
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root, data=data,
            total_epsilon=2.0, workers=1, seed=11, max_batch=4, max_wait=0.005,
        )
        # Worker 0 commits the spend, then dies before sending the reply —
        # the worst spot for at-most-once, the defining drill for
        # exactly-once.
        failpoints_by_worker = {0: {"serving.worker.before_reply": "crash"}}

        async def scenario():
            service = PlanService(config, failpoints_by_worker=failpoints_by_worker)
            host, port = await service.start()
            loop = asyncio.get_running_loop()

            def drill():
                client = ServiceClient(host, port, timeout=30.0)
                try:
                    first = client.execute("acme", "related", 0.05, key="DRILL")
                    second = client.execute("acme", "related", 0.05, key="DRILL")
                finally:
                    client.close()
                return first, second

            try:
                first, second = await loop.run_in_executor(None, drill)
                health = await service.health()
            finally:
                await service.shutdown()
            return first, second, health

        first, second, health = asyncio.run(scenario())
        # The pool-level retry replayed the committed spend transparently:
        # one successful reply, and the explicit repeat is byte-identical.
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert "deduplicated" not in first  # stripped before the wire
        assert health["dedup_hits"] >= 1
        replayed = inspect_ledger(ledger_root / "acme.journal")
        assert replayed["costs"] == 1
        assert replayed["spent_epsilon"] == pytest.approx(0.05)
        assert replayed["keyed_results"] == 1
        assert replayed["dangling_intents"] == []

    def test_conn_drop_retry_converges_to_one_charge(
        self, plans_dir, data, tmp_path
    ):
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root, data=data,
            total_epsilon=2.0, workers=1, seed=13, max_batch=4, max_wait=0.005,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            loop = asyncio.get_running_loop()

            def drill():
                client = ServiceClient(host, port, timeout=5.0)
                try:
                    with failpoints.active("serving.conn.drop", "error"):
                        # Both the original and the transparent keyed retry
                        # get their replies dropped on the floor; the spend
                        # behind them lands at most once.
                        with pytest.raises(ServiceError) as excinfo:
                            client.execute("acme", "related", 0.05, key="DROP")
                        kind = excinfo.value.kind
                    # Disarmed: the SAME key returns the already-charged
                    # release, twice, bit-identically.
                    first = client.execute("acme", "related", 0.05, key="DROP")
                    second = client.execute("acme", "related", 0.05, key="DROP")
                finally:
                    client.close()
                return kind, first, second

            try:
                kind, first, second = await loop.run_in_executor(None, drill)
                health = await service.health()
            finally:
                await service.shutdown()
            return kind, first, second, health

        kind, first, second, health = asyncio.run(scenario())
        assert kind == "ConnectionClosed"
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert health["dedup_hits"] >= 2  # both post-drill repeats replayed
        replayed = inspect_ledger(ledger_root / "acme.journal")
        assert replayed["costs"] == 1
        assert replayed["spent_epsilon"] == pytest.approx(0.05)
        assert replayed["dangling_intents"] == []

    def test_async_client_auto_keys_and_folds_concurrent_duplicates(
        self, plans_dir, data, tmp_path
    ):
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=tmp_path / "ledgers", data=data,
            total_epsilon=2.0, workers=1, seed=17, max_batch=8, max_wait=0.05,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                # Two concurrent requests with ONE key land in the same
                # coalescing window: one spend, two identical replies.
                left, right = await asyncio.gather(
                    client.execute("acme", "related", 0.05, key="SAME"),
                    client.execute("acme", "related", 0.05, key="SAME"),
                )
                auto = await client.execute("acme", "related", 0.05)
                health = await service.health()
            finally:
                await client.close()
                await service.shutdown()
            return left, right, auto, health

        left, right, auto, health = asyncio.run(scenario())
        assert json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)
        assert auto != left  # the auto-keyed request was its own spend
        assert health["coalescer"]["duplicates_folded"] >= 1
        replayed = inspect_ledger(tmp_path / "ledgers" / "acme.journal")
        assert replayed["costs"] == 2  # SAME charged once + the auto key
