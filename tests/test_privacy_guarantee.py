"""Statistical verification of the eps-DP guarantee itself.

Differential privacy is a property of output *distributions*: for
neighbouring datasets ``x ~ x'`` (one unit count changed by 1) every
output event's probability may differ by at most ``e^eps``. These tests
estimate the output densities of actual mechanism releases on neighbouring
inputs by histogramming many samples, and assert the empirical log-ratio
stays within ``eps`` (plus sampling slack) on every well-populated bin.

Because DP is closed under post-processing, for the vector-valued
mechanisms it suffices to test any fixed scalar projection of the release.
"""

import numpy as np
import pytest

from repro.core.lrm import LowRankMechanism
from repro.mechanisms.baselines import NoiseOnDataMechanism, NoiseOnResultsMechanism
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.wavelet import WaveletMechanism
from repro.workloads import Workload, wrelated

SAMPLES = 60_000
MIN_BIN = 300  # only test bins with enough mass for a stable ratio
SLACK = 0.35  # sampling noise allowance on the log-ratio


def _max_log_ratio(samples_a, samples_b, bins=30):
    """Largest |log(density_a / density_b)| over well-populated bins."""
    low = min(samples_a.min(), samples_b.min())
    high = max(samples_a.max(), samples_b.max())
    edges = np.linspace(low, high, bins + 1)
    count_a, _ = np.histogram(samples_a, bins=edges)
    count_b, _ = np.histogram(samples_b, bins=edges)
    mask = (count_a >= MIN_BIN) & (count_b >= MIN_BIN)
    if not np.any(mask):
        raise AssertionError("no well-populated bins; widen the histogram")
    ratios = np.log(count_a[mask] / count_b[mask])
    return float(np.abs(ratios).max())


def _scalar_release_samples(mechanism, x, epsilon, projection, seed):
    rng = np.random.default_rng(seed)
    return np.array(
        [projection @ mechanism.answer(x, epsilon, rng) for _ in range(SAMPLES)]
    )


class TestLaplaceMechanismRatio:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0])
    def test_count_query_respects_epsilon(self, epsilon):
        # Single counting query, neighbouring datasets differ by one unit.
        w = Workload(np.ones((1, 4)))
        mech = NoiseOnResultsMechanism().fit(w)
        x = np.array([10.0, 5.0, 3.0, 2.0])
        x_neighbor = x.copy()
        x_neighbor[0] += 1.0
        projection = np.ones(1)
        a = _scalar_release_samples(mech, x, epsilon, projection, seed=0)
        b = _scalar_release_samples(mech, x_neighbor, epsilon, projection, seed=1)
        assert _max_log_ratio(a, b) <= epsilon + SLACK

    def test_larger_epsilon_is_detectably_looser(self):
        # Sanity of the test itself: at eps = 3 the shift IS detectable
        # (ratio near 3 on the tails), so the harness is not vacuous.
        w = Workload(np.ones((1, 2)))
        mech = NoiseOnResultsMechanism().fit(w)
        x = np.array([5.0, 5.0])
        x_neighbor = np.array([6.0, 5.0])
        projection = np.ones(1)
        a = _scalar_release_samples(mech, x, 3.0, projection, seed=2)
        b = _scalar_release_samples(mech, x_neighbor, 3.0, projection, seed=3)
        assert _max_log_ratio(a, b) > 0.5


class TestVectorMechanismsRatio:
    """Scalar projections of vector releases on neighbouring datasets."""

    def _check(self, mechanism, workload, epsilon=1.0, seed=0):
        n = workload.domain_size
        x = np.linspace(10, 20, n)
        x_neighbor = x.copy()
        x_neighbor[n // 2] += 1.0
        rng = np.random.default_rng(seed)
        projection = rng.standard_normal(workload.num_queries)
        a = _scalar_release_samples(mechanism.fit(workload), x, epsilon, projection, seed + 1)
        b = _scalar_release_samples(mechanism, x_neighbor, epsilon, projection, seed + 2)
        assert _max_log_ratio(a, b) <= epsilon + SLACK

    def test_noise_on_data(self):
        self._check(NoiseOnDataMechanism(), wrelated(4, 8, s=2, seed=0))

    def test_wavelet(self):
        self._check(WaveletMechanism(), wrelated(4, 8, s=2, seed=0))

    def test_hierarchical(self):
        self._check(HierarchicalMechanism(), wrelated(4, 8, s=2, seed=0))

    def test_low_rank_mechanism(self):
        mech = LowRankMechanism(max_outer=15, max_inner=3, nesterov_iters=15, stall_iters=5)
        self._check(mech, wrelated(4, 8, s=2, seed=0))
