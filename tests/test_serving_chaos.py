"""Seeded chaos soak for the serving tier, with execute-retries enabled.

Hammers a live TCP service with concurrent driver traffic while a chaos
controller SIGKILLs random workers, a pre-armed worker crashes pre-spend,
another hangs its pipe (caught by the per-request deadline), one client
connection is dropped mid-request, and a hot plan reload lands mid-soak.
Every logical request carries ONE idempotency key reused across all of
its retries, so a lost reply is retried freely — the ledger's result
journal makes the retry replay any already-committed spend.

The invariant trio asserted at the end:

1. **Exactly one terminal reply** per wire request — the multiplexed
   client's ``unmatched_replies`` / ``duplicate_replies`` anomaly
   counters stay zero, every driver attempt resolves, and after
   reconciliation retries every logical request reached success.
2. **Exactly-once accounting, no orphan slack** — the replayed ledger
   equals the spend of the *unique served keys* exactly: one cost per
   key, zero double-charges, and re-executing a sample of served keys
   returns bit-identical replies with zero additional charge
   (``health``'s dedup-hit counter ticks instead). ``ledger recover``
   afterwards reconciles any dangling keyed intents without changing
   the replayed state.
3. **Availability** ≥ 99 % of logical requests succeed within the
   bounded in-soak retries — deliberate worker kills never take the
   service down.

Seeded via ``REPRO_CHAOS_SEED`` (default 1307) so CI failures replay.
"""

import asyncio
import json
import os
import random
import shutil
import signal
import time
import uuid

import numpy as np
import pytest

from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.privacy.ledger import inspect_ledger, ledger_health, recover_ledger
from repro.serving import AsyncServiceClient, PlanService, ServiceConfig, ServiceError
from repro.testing.faults import failpoints
from repro.workloads import prefix_workload, wrelated

N = 32
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1307"))

DRIVERS = 6
REQUESTS_PER_DRIVER = 25
MAX_ATTEMPTS = 6
EPSILON = 0.02

# Terminal refusals that never charge the ledger: safe to retry freely
# and excluded from the availability denominator.
_SHED_KINDS = {"overloaded", "deadline_exceeded", "LedgerBusyError"}
# Failures where a spend MAY have been charged before the reply was
# lost: these bound how many orphaned ledger costs are acceptable.
_UNKNOWN_KINDS = {
    "WorkerCrashError", "WorkerTimeoutError", "Timeout",
    "ConnectionClosed", "InternalError", "ServiceUnavailable",
}


@pytest.fixture
def chaos_dirs(tmp_path):
    plans = tmp_path / "plans"
    plans.mkdir()
    for name, workload in (
        ("related", wrelated(8, N, s=2, seed=1)),
        ("prefix", prefix_workload(N)),
    ):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, plans / f"{name}.plan.npz")
    return plans, tmp_path / "ledgers"


class _Tally:
    def __init__(self):
        self.successes = 0
        self.shed = 0
        self.unknown_failures = 0
        self.other_failures = 0
        self.logical_ok = 0
        self.logical_failed = 0


async def _driver(client, rng, plans, tally, served, failed):
    for _ in range(REQUESTS_PER_DRIVER):
        await asyncio.sleep(rng.uniform(0.0, 0.01))
        # ONE idempotency key per logical request, reused across every
        # retry: however many attempts it takes, it is one spend.
        key = uuid.uuid4().hex
        plan = rng.choice(plans)
        done = False
        for _ in range(MAX_ATTEMPTS):
            try:
                reply = await client.execute(
                    "acme", plan, EPSILON, deadline_ms=2000, key=key
                )
            except ServiceError as error:
                if error.kind in _SHED_KINDS:
                    tally.shed += 1
                elif error.kind in _UNKNOWN_KINDS:
                    tally.unknown_failures += 1
                else:
                    tally.other_failures += 1
                await asyncio.sleep(rng.uniform(0.01, 0.05))
                continue
            tally.successes += 1
            served[key] = (plan, reply)
            done = True
            break
        if done:
            tally.logical_ok += 1
        else:
            tally.logical_failed += 1
            failed.append((key, plan))


async def _chaos_controller(service, rng, plans_dir, live_plans, soaking):
    """Random SIGKILLs + one mid-soak hot reload + one dropped connection."""
    kills = 0
    reloaded = False
    dropped = False
    started = time.monotonic()
    # Run at least until the minimum chaos quota is met, even if the
    # drivers drain their traffic quickly.
    while soaking.is_set() or kills < 3 or not reloaded or not dropped:
        await asyncio.sleep(rng.uniform(0.25, 0.45))
        elapsed = time.monotonic() - started
        if not reloaded and elapsed > 1.0:
            # Hot reload mid-soak: a third plan lands and swaps in live.
            plan = build_plan(
                wrelated(4, N, s=2, seed=5), epsilon_hint=0.1, mechanism="LM"
            )
            save_plan(plan, plans_dir / "extra.plan.npz")
            await service.reload()
            live_plans.append("extra")
            reloaded = True
            continue
        if not dropped and elapsed > 0.5:
            # A client vanishes mid-request: the server must shrug.
            host, port = service.address
            _, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"op": "execute", "tenant": "ghost", "plan": "related",'
                b' "epsilon": 0.01}\n'
            )
            writer.transport.abort()
            dropped = True
            continue
        pids = service.pool.pids()
        if pids and kills < 5:
            os.kill(rng.choice(pids), signal.SIGKILL)
            kills += 1
    return kills, reloaded, dropped


class TestChaosSoak:
    def test_soak_under_kills_hangs_reload_and_drops(self, chaos_dirs):
        plans_dir, ledger_root = chaos_dirs
        rng = random.Random(SEED)
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root,
            data=np.arange(float(N)),
            total_epsilon=50.0, workers=3, seed=17,
            max_batch=8, max_wait=0.004,
            request_timeout=0.75,
            heartbeat_interval=0.2, heartbeat_timeout=0.6,
            restart_budget=50, backoff_base=0.02, healthy_after=5.0,
        )
        # Worker 0 crashes pre-spend on its first dispatch; worker 1 hangs
        # its pipe (the per-request deadline must catch it). Respawns are
        # clean: these arm by monotonic worker index, not slot.
        failpoints_by_worker = {
            0: {"serving.worker.request": "crash"},
            1: {"serving.worker.request": "delay:2.5"},
        }
        tally = _Tally()
        live_plans = ["related", "prefix"]
        served = {}   # key -> (plan, reply): every logical success
        failed = []   # (key, plan): exhausted in-soak retries

        async def _retry_until_served(client, plan, key, attempts=30):
            for _ in range(attempts):
                try:
                    return await client.execute("acme", plan, EPSILON, key=key)
                except ServiceError as error:
                    assert error.kind in _UNKNOWN_KINDS | _SHED_KINDS
                    await asyncio.sleep(0.1)
            raise AssertionError(f"key {key!r} never reached a success")

        async def scenario():
            service = PlanService(config, failpoints_by_worker=failpoints_by_worker)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(
                host, port, max_busy_wait=2.0
            )
            soaking = asyncio.Event()
            soaking.set()
            chaos = asyncio.ensure_future(
                _chaos_controller(service, rng, plans_dir, live_plans, soaking)
            )
            try:
                await asyncio.gather(*[
                    _driver(
                        client, random.Random(SEED + i), live_plans, tally,
                        served, failed,
                    )
                    for i in range(DRIVERS)
                ])
            finally:
                soaking.clear()
            kills, reloaded, dropped = await chaos
            # Let the supervisor finish respawning after the last kill.
            for _ in range(100):
                health = await client.health()
                if health["alive"] == config.workers:
                    break
                await asyncio.sleep(0.1)
            # Reconciliation: every logical request that exhausted its
            # in-soak retries is retried (same key) until it succeeds —
            # exactly-once makes that always safe, so no request is ever
            # left without a terminal success.
            for key, plan in failed:
                served[key] = (plan, await _retry_until_served(client, plan, key))
            # The new plan genuinely serves post-reload — keyed like
            # everything else, so the retries stay charge-safe.
            fresh = await _retry_until_served(client, "extra", "extra-probe")
            # Exactly-once, witnessed on the wire: re-executing a sample
            # of already-served keys returns bit-identical replies.
            sampler = random.Random(SEED + 999)
            sample = sampler.sample(sorted(served), k=min(10, len(served)))
            for key in sample:
                plan, original = served[key]
                replay = await client.execute("acme", plan, EPSILON, key=key)
                assert json.dumps(replay, sort_keys=True) == json.dumps(
                    original, sort_keys=True
                ), f"retried key {key!r} was not bit-identical"
            health = await client.health(ledgers=True)
            budget = await client.budget("acme")
            anomalies = (client.unmatched_replies, client.duplicate_replies)
            await client.close()
            await service.shutdown()
            return kills, reloaded, dropped, fresh, health, budget, anomalies, sample

        kills, reloaded, dropped, fresh, health, budget, anomalies, sample = (
            asyncio.run(scenario())
        )

        # The chaos actually happened.
        assert kills >= 3 and reloaded and dropped
        assert health["crashes"] >= 2  # kills + armed faults were noticed
        assert len(fresh["values"]) == 4

        # Invariant 1: exactly one terminal reply per wire request, and
        # after reconciliation every logical request reached success.
        assert anomalies == (0, 0)
        total_logical = DRIVERS * REQUESTS_PER_DRIVER
        assert tally.logical_ok + tally.logical_failed == total_logical
        assert tally.other_failures == 0  # only structured, expected kinds
        assert len(served) == total_logical

        # Invariant 2: STRICT equality — the ledger replays to exactly one
        # cost per unique served key (drivers + the reload probe), with no
        # orphan slack; the sampled replays charged nothing and were
        # answered from the result journal (dedup counter ticked).
        replayed = inspect_ledger(ledger_root / "acme.journal")
        unique_keys_served = total_logical + 1  # + the "extra" probe
        assert replayed["costs"] == unique_keys_served, (
            f"double-charge or lost spend: ledger replays "
            f"{replayed['costs']} costs for {unique_keys_served} unique "
            f"keys (seed {SEED}, tally {vars(tally)})"
        )
        assert replayed["keyed_results"] == unique_keys_served
        assert replayed["spent_epsilon"] == pytest.approx(
            EPSILON * unique_keys_served
        )
        assert budget["spent_epsilon"] == pytest.approx(
            replayed["spent_epsilon"]
        )
        assert health["dedup_hits"] >= len(sample)
        probe = health["ledgers"]["acme"]
        assert probe["records"] > 0

        # Invariant 3: availability floor within the bounded in-soak
        # retries (reconciliation not counted).
        availability = tally.logical_ok / total_logical
        assert availability >= 0.99, (
            f"availability {availability:.4f} < 0.99 "
            f"(seed {SEED}, tally {vars(tally)})"
        )

        # The service rode out the soak: reload landed, workers recovered.
        assert health["generation"] == 1 and health["reloads"] == 1
        assert health["alive"] == 3 and health["quarantined"] == 0

        # Orphan reconciliation is definitive: recover drops any dangling
        # keyed intents the kills left behind WITHOUT changing the
        # replayed spend — the freed keys were all retried to success, so
        # their charges live under committed records already.
        recovered = recover_ledger(ledger_root / "acme.journal")
        assert recovered["dangling_intents"] == []
        assert recovered["costs"] == unique_keys_served
        assert recovered["keyed_results"] == unique_keys_served


class TestReloadFaults:
    def test_crash_during_reload_keeps_old_generation(self, chaos_dirs):
        plans_dir, ledger_root = chaos_dirs
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root,
            data=np.arange(float(N)),
            total_epsilon=5.0, workers=1, seed=11, max_batch=4,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                plan = build_plan(
                    wrelated(4, N, s=2, seed=5), epsilon_hint=0.1, mechanism="LM"
                )
                save_plan(plan, plans_dir / "extra.plan.npz")
                # The swap dies after the new segment is staged: the old
                # generation must keep serving and the staged segment must
                # not leak.
                with failpoints.active("serving.reload.before_swap", "error"):
                    with pytest.raises(ServiceError) as excinfo:
                        await client.reload()
                failed_kind = excinfo.value.kind
                still_serving = await client.execute("acme", "related", 0.05)
                health_mid = await client.health()
                # Disarmed, the same reload goes through.
                result = await client.reload()
                fresh = await client.execute("acme", "extra", 0.05)
                health_end = await client.health()
            finally:
                await client.close()
                await service.shutdown()
            return failed_kind, still_serving, health_mid, result, fresh, health_end

        failed_kind, still_serving, health_mid, result, fresh, health_end = (
            asyncio.run(scenario())
        )
        assert failed_kind == "InternalError"
        assert len(still_serving["values"]) == 8
        assert health_mid["generation"] == 0 and health_mid["reloads"] == 0
        assert health_mid["plans"] == ["prefix", "related"]
        assert result["generation"] == 1
        assert len(fresh["values"]) == 4
        assert health_end["reloads"] == 1
        # The failed attempt charged nothing and corrupted nothing.
        probe = ledger_health(ledger_root / "acme.journal")
        assert probe["ok"]
