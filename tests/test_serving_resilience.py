"""Resilience-layer tests: supervision, deadlines/shedding, hot reload,
and the hardened clients.

The contracts under test:

* **Hung-worker detection** — a worker that stalls its pipe (not just one
  that dies) is caught by the per-request deadline, killed with SIGKILL
  and its slot respawned; the caller sees ``WorkerTimeoutError``, never a
  hang.
* **Restart budget + quarantine** — a crash-looping slot stops flapping
  after ``restart_budget`` consecutive failures and is quarantined; the
  pool keeps serving on its remaining slots and says so via ``health``.
* **Load shedding** — expired or over-queue-limit executes are refused
  *before* any worker dispatch with structured ``deadline_exceeded`` /
  ``overloaded`` replies carrying ``retry_after``; shed requests are
  never charged.
* **Hot plan reload** — a new shared segment swaps in generation by
  generation while in-flight requests keep completing; the old segment
  is unlinked afterwards; stale archives are gated out at staging time.
* **Client hardening** — the blocking client bounds every round-trip,
  reconnects-and-retries once for idempotent ops only, and both clients
  honour busy ``retry_after`` hints with capped jittered backoff.
* **Graceful drain under load** — ``shutdown()`` with a burst in flight
  (including a worker killed mid-drain) still answers every accepted
  request with exactly one terminal reply, and the ledger replays to
  exactly the successful spend.
"""

import asyncio
import json
import shutil
import socket
import threading
import time

import numpy as np
import pytest

from repro.engine.plan import build_plan
from repro.exceptions import ValidationError
from repro.io.serialization import save_plan
from repro.privacy.ledger import inspect_ledger, ledger_health
from repro.serving import (
    AsyncServiceClient,
    Coalescer,
    PlanService,
    RemoteExecutionError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    WorkerConfig,
    WorkerPool,
    WorkerTimeoutError,
    stage_plans,
)
from repro.testing.faults import failpoints
from repro.workloads import prefix_workload, wrelated

N = 32


@pytest.fixture(scope="module")
def plans_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("plans")
    for name, workload in (
        ("related", wrelated(8, N, s=2, seed=1)),
        ("prefix", prefix_workload(N)),
    ):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, directory / f"{name}.plan.npz")
    return directory


@pytest.fixture
def data():
    return np.arange(float(N))


def _worker_config(manifest, tmp_path, **overrides):
    fields = dict(
        manifest=manifest, ledger_root=tmp_path / "ledgers",
        total_epsilon=5.0, seed=7,
    )
    fields.update(overrides)
    return WorkerConfig(**fields)


def _wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# --------------------------------------------------------------------- #
# Supervision: hung workers, restart budget, quarantine, health
# --------------------------------------------------------------------- #
class TestSupervision:
    def test_hung_worker_killed_and_respawned(self, plans_dir, data, tmp_path):
        store, manifest = stage_plans(plans_dir, data)
        # Worker index 0 stalls 5 s on every request; the 0.4 s pipe
        # deadline must catch it long before that.
        pool = WorkerPool(
            _worker_config(manifest, tmp_path),
            workers=1,
            failpoints_by_worker={0: {"serving.worker.request": "delay:5"}},
            request_timeout=0.4,
            heartbeat_interval=60.0,  # isolate the per-request path
        )
        try:
            started = time.monotonic()
            with pytest.raises(WorkerTimeoutError):
                pool.submit(("execute", "alice", "related", [(0.05, {})]))
            assert time.monotonic() - started < 3.0  # caught, not waited out

            # The slot respawned clean (fresh index: no failpoints) and the
            # killed attempt never charged the ledger.
            status, releases = pool.submit(
                ("execute", "alice", "related", [(0.05, {})])
            )
            assert status == "ok" and len(releases) == 1
            health = pool.health()
            assert health["timeouts"] == 1
            assert health["crashes"] == 1
            assert health["alive"] == 1
            assert health["quarantined"] == 0
        finally:
            pool.shutdown()
            store.unlink()
        replayed = inspect_ledger(tmp_path / "ledgers" / "alice.journal")
        assert replayed["costs"] == 1

    def test_heartbeat_detects_idle_death(self, plans_dir, data, tmp_path):
        store, manifest = stage_plans(plans_dir, data)
        pool = WorkerPool(
            _worker_config(manifest, tmp_path),
            workers=1,
            heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
        )
        try:
            assert pool.submit(("ping",))[0] == "ok"
            import os
            import signal

            os.kill(pool.pids()[0], signal.SIGKILL)
            # No request is in flight: only the heartbeat can notice.
            assert _wait_for(lambda: pool.health()["crashes"] == 1)
            assert _wait_for(lambda: pool.health()["alive"] == 1)
            assert pool.submit(("ping",))[0] == "ok"
        finally:
            pool.shutdown()
            store.unlink()

    def test_crash_loop_is_quarantined_not_flapping(self, plans_dir, data, tmp_path):
        store, manifest = stage_plans(plans_dir, data)
        # Slot 0 re-arms a boot crash on EVERY respawn (the crash-loop
        # shape); slot 1 is healthy. Budget of 2 restarts, tiny backoff.
        pool = WorkerPool(
            _worker_config(manifest, tmp_path),
            workers=2,
            failpoints_by_slot={0: {"serving.worker.boot": "crash"}},
            restart_budget=2,
            backoff_base=0.02,
            heartbeat_interval=60.0,
        )
        try:
            assert _wait_for(lambda: pool.health()["quarantined"] == 1)
            health = pool.health()
            # 1 initial boot + 2 budgeted respawns, then the slot stays down.
            slot0 = next(s for s in health["slots"] if s["slot"] == 0)
            assert slot0["quarantined"] and not slot0["alive"]
            assert health["alive"] == 1
            time.sleep(0.3)  # no further flapping once quarantined
            assert pool.health()["crashes"] == health["crashes"]
            # The service never went down: slot 1 keeps serving.
            assert pool.submit(("ping",))[0] == "ok"
            status, releases = pool.submit(
                ("execute", "alice", "related", [(0.01, {})])
            )
            assert status == "ok" and len(releases) == 1
        finally:
            pool.shutdown()
            store.unlink()

    def test_health_wire_op(self, plans_dir, data, tmp_path):
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=tmp_path / "ledgers", data=data,
            total_epsilon=2.0, workers=1, seed=3, max_batch=4,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                await client.execute("alice", "related", 0.05)
                health = await client.health(ledgers=True)
            finally:
                await client.close()
                await service.shutdown()
            return health

        health = asyncio.run(scenario())
        assert health["workers"] == 1 and health["alive"] == 1
        assert health["quarantined"] == 0 and health["generation"] == 0
        assert health["queue_depth"] == 0
        assert health["shed"] == {"overloaded": 0, "deadline_exceeded": 0}
        assert health["coalescer"]["requests_coalesced"] == 1
        assert health["plans"] == ["prefix", "related"]
        probe = health["ledgers"]["alice"]
        assert probe["ok"] and probe["dangling_intents"] == 0

    def test_ledger_health_missing_path(self, tmp_path):
        probe = ledger_health(tmp_path / "nobody.journal")
        assert probe == {
            "path": str(tmp_path / "nobody.journal"), "exists": False, "ok": False,
        }


# --------------------------------------------------------------------- #
# Deadlines and load shedding
# --------------------------------------------------------------------- #
class TestLoadShedding:
    def test_admission_sheds_expired_and_overload(self, plans_dir, data, tmp_path):
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=tmp_path / "ledgers", data=data,
            total_epsilon=2.0, workers=1, seed=3, max_batch=4, max_queue=0,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port, max_busy_wait=0.0)
            try:
                # max_queue=0: every execute is shed as overloaded ...
                with pytest.raises(ServiceError) as excinfo:
                    await client.execute("alice", "related", 0.05)
                overloaded = excinfo.value
                # ... and an already-expired deadline is shed first.
                service.config.max_queue = 64
                with pytest.raises(ServiceError) as excinfo:
                    await client.execute("alice", "related", 0.05, deadline_ms=0)
                expired = excinfo.value
                health = await client.health()
                budget = await client.budget("alice")
            finally:
                await client.close()
                await service.shutdown()
            return overloaded, expired, health, budget

        overloaded, expired, health, budget = asyncio.run(scenario())
        assert overloaded.kind == "overloaded"
        assert overloaded.retry_after and overloaded.retry_after > 0
        assert expired.kind == "deadline_exceeded"
        assert expired.retry_after and expired.retry_after > 0
        assert health["shed"] == {"overloaded": 1, "deadline_exceeded": 1}
        # Shed requests are never charged.
        assert budget["spent_epsilon"] == 0.0

    def test_coalescer_never_dispatches_expired_members(self):
        class _SlowPool:
            def __init__(self):
                self.commands = []

            def submit(self, command, timeout=None, retry_delivered=False):
                self.commands.append(command)
                _, tenant, plan, requests = command
                time.sleep(0.15)  # the batch the expired member would join
                return ("ok", [{"epsilon": req[0]} for req in requests])

        async def scenario():
            pool = _SlowPool()
            coalescer = Coalescer(pool, max_batch=8, max_wait=0.02)
            now = time.monotonic()
            results = await asyncio.gather(
                coalescer.submit("alice", "related", 0.01, deadline=now + 30.0),
                coalescer.submit("alice", "related", 0.02, deadline=now - 0.001),
                return_exceptions=True,
            )
            return pool, coalescer, results

        pool, coalescer, results = asyncio.run(scenario())
        assert isinstance(results[0], dict)
        assert isinstance(results[1], RemoteExecutionError)
        assert results[1].kind == "deadline_exceeded"
        assert coalescer.shed_expired == 1
        # The expired member was dropped BEFORE dispatch: the one batch
        # that ran carried only the live request.
        assert len(pool.commands) == 1
        assert len(pool.commands[0][3]) == 1


# --------------------------------------------------------------------- #
# Hot plan reload
# --------------------------------------------------------------------- #
class TestHotReload:
    def test_reload_swaps_generation_without_dropping_requests(
        self, plans_dir, data, tmp_path
    ):
        live_dir = tmp_path / "live_plans"
        shutil.copytree(plans_dir, live_dir)
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=live_dir, ledger_root=ledger_root, data=data,
            total_epsilon=20.0, workers=2, seed=9, max_batch=8, max_wait=0.004,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                burst = [
                    asyncio.ensure_future(client.execute("alice", "related", 0.01))
                    for _ in range(24)
                ]
                # A third plan lands on disk, then a reload mid-burst.
                plan = build_plan(wrelated(4, N, s=2, seed=5), epsilon_hint=0.1, mechanism="LM")
                save_plan(plan, live_dir / "extra.plan.npz")
                result = await client.reload()
                outcomes = await asyncio.gather(*burst, return_exceptions=True)
                fresh = await client.execute("alice", "extra", 0.01)
                health = await client.health()
                budget = await client.budget("alice")
            finally:
                await client.close()
                await service.shutdown()
            return result, outcomes, fresh, health, budget

        result, outcomes, fresh, health, budget = asyncio.run(scenario())
        assert result["generation"] == 1
        assert result["plans"] == ["extra", "prefix", "related"]
        # Nothing in flight was dropped by the swap.
        served = [r for r in outcomes if isinstance(r, dict)]
        assert len(served) == 24
        assert len(fresh["values"]) == 4  # the new plan actually serves
        assert health["generation"] == 1 and health["reloads"] == 1
        assert health["alive"] == 2
        # Every accepted spend (24 + the post-reload one) is on the ledger.
        replayed = inspect_ledger(ledger_root / "alice.journal")
        assert replayed["costs"] == 25
        assert replayed["spent_epsilon"] == budget["spent_epsilon"]

    def test_watch_plans_hot_reloads_on_change(self, plans_dir, data, tmp_path):
        live_dir = tmp_path / "watched_plans"
        shutil.copytree(plans_dir, live_dir)
        config = ServiceConfig(
            plans_dir=live_dir, ledger_root=tmp_path / "ledgers", data=data,
            total_epsilon=2.0, workers=1, seed=9, max_batch=4,
            watch_plans=True, watch_interval=0.1,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                plan = build_plan(wrelated(4, N, s=2, seed=5), epsilon_hint=0.1, mechanism="LM")
                save_plan(plan, live_dir / "extra.plan.npz")
                for _ in range(100):
                    await asyncio.sleep(0.1)
                    if service._reloads:
                        break
                health = await client.health()
                fresh = await client.execute("alice", "extra", 0.01)
            finally:
                await client.close()
                await service.shutdown()
            return health, fresh

        health, fresh = asyncio.run(scenario())
        assert health["reloads"] == 1 and health["generation"] == 1
        assert "extra" in health["plans"]
        assert len(fresh["values"]) == 4

    def test_staleness_gates_at_staging(self, plans_dir, data):
        # Fresh archives pass a generous TTL / version floor untouched ...
        store, manifest = stage_plans(
            plans_dir, data, ttl_seconds=10**9, min_solver_version=0
        )
        assert store.plan_names() == ["prefix", "related"]
        store.unlink()
        # ... and are all evicted by an impossible version floor or TTL.
        with pytest.raises(ValidationError, match="stale"):
            stage_plans(plans_dir, data, min_solver_version=10**9)
        with pytest.raises(ValidationError, match="stale"):
            stage_plans(plans_dir, data, ttl_seconds=0.0)


# --------------------------------------------------------------------- #
# Client hardening (stub servers: no worker processes needed)
# --------------------------------------------------------------------- #
def _stub_server(handler):
    """A threaded JSON-lines stub; returns (port, counters, stop())."""
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(0.2)
    stopping = threading.Event()
    counters = {"connections": 0, "requests": 0}

    def serve_connection(conn):
        with conn:
            fh = conn.makefile("rwb")
            while not stopping.is_set():
                try:
                    line = fh.readline()
                except (OSError, ValueError):
                    return
                if not line:
                    return
                counters["requests"] += 1
                if not handler(json.loads(line), fh, counters, stopping):
                    return

    def accept_loop():
        while not stopping.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            counters["connections"] += 1
            threading.Thread(
                target=serve_connection, args=(conn,), daemon=True
            ).start()

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()

    def stop():
        stopping.set()
        listener.close()
        thread.join(timeout=2)

    return listener.getsockname()[1], counters, stop


def _reply(fh, payload, request):
    if request.get("id") is not None:
        payload = {**payload, "id": request["id"]}
    fh.write(json.dumps(payload).encode() + b"\n")
    fh.flush()
    return True


class TestClientHardening:
    def test_timeout_reconnect_idempotent_only(self):
        def never_reply(request, fh, counters, stopping):
            stopping.wait(5.0)  # stall far past the client timeout
            return False

        port, counters, stop = _stub_server(never_reply)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=0.2, max_busy_wait=0.0)
            # Idempotent op: timeout -> reconnect -> retry once -> surface.
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.kind == "Timeout"
            assert client.reconnects == 1
            assert counters["requests"] == 2  # the retry really went out
            # A (default) keyed execute IS retried once now: the key makes
            # the replay exactly-once even if the lost request charged.
            with pytest.raises(ServiceError) as excinfo:
                client.execute("alice", "related", 0.01)
            assert excinfo.value.kind == "Timeout"
            assert counters["requests"] == 4
            # Opting out of the key restores at-most-once: no retry, and
            # the outcome is explicitly unknown.
            with pytest.raises(ServiceError) as excinfo:
                client.execute("alice", "related", 0.01, key=False)
            assert excinfo.value.kind == "Timeout"
            assert "unknown" in excinfo.value.message
            assert counters["requests"] == 5
            client.close()
        finally:
            stop()

    def test_blocking_client_honours_retry_after(self):
        def busy_once_per_connection(request, fh, counters, stopping):
            if counters["requests"] == 1:
                return _reply(fh, {
                    "ok": False, "error": "LedgerBusyError",
                    "message": "ledger lock contended", "retry_after": 0.01,
                }, request)
            return _reply(fh, {"ok": True, "release": {"values": [1.0]}}, request)

        port, counters, stop = _stub_server(busy_once_per_connection)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=2.0, max_busy_wait=2.0)
            release = client.execute("alice", "related", 0.01)
            assert release == {"values": [1.0]}
            assert counters["requests"] == 2  # one busy refusal, one retry
            client.close()
        finally:
            stop()

    def test_busy_retries_capped_by_max_wait(self):
        def always_busy(request, fh, counters, stopping):
            return _reply(fh, {
                "ok": False, "error": "overloaded",
                "message": "queue full", "retry_after": 0.02,
            }, request)

        port, counters, stop = _stub_server(always_busy)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=2.0, max_busy_wait=0.1)
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.execute("alice", "related", 0.01)
            assert excinfo.value.kind == "overloaded"
            assert excinfo.value.retry_after == pytest.approx(0.02)
            assert time.monotonic() - started < 1.0  # capped, not unbounded
            assert counters["requests"] >= 2
            client.close()
        finally:
            stop()

    def test_async_client_honours_retry_after(self):
        def busy_once(request, fh, counters, stopping):
            if counters["requests"] == 1:
                return _reply(fh, {
                    "ok": False, "error": "LedgerBusyError",
                    "message": "contended", "retry_after": 0.01,
                }, request)
            return _reply(fh, {"ok": True, "release": {"values": [2.0]}}, request)

        port, counters, stop = _stub_server(busy_once)
        try:
            async def scenario():
                client = await AsyncServiceClient.connect(
                    "127.0.0.1", port, max_busy_wait=2.0
                )
                try:
                    return await client.execute("alice", "related", 0.01)
                finally:
                    await client.close()

            release = asyncio.run(scenario())
            assert release == {"values": [2.0]}
            assert counters["requests"] == 2
        finally:
            stop()

    def test_conn_drop_failpoint_and_reconnect(self, plans_dir, data, tmp_path):
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=tmp_path / "ledgers", data=data,
            total_epsilon=2.0, workers=1, seed=3, max_batch=4,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            loop = asyncio.get_running_loop()

            def drill():
                client = ServiceClient(host, port, timeout=2.0)
                try:
                    with failpoints.active("serving.conn.drop", "error"):
                        # Both the first attempt and the transparent
                        # reconnect-retry get their replies dropped.
                        with pytest.raises(ServiceError) as excinfo:
                            client.ping()
                        kind = excinfo.value.kind
                        reconnects = client.reconnects
                    # Disarmed: the same client recovers on a fresh socket.
                    pong = client.ping()
                finally:
                    client.close()
                return kind, reconnects, pong

            try:
                kind, reconnects, pong = await loop.run_in_executor(None, drill)
            finally:
                await service.shutdown()
            return kind, reconnects, pong

        kind, reconnects, pong = asyncio.run(scenario())
        assert kind == "ConnectionClosed"
        assert reconnects == 1
        assert pong["pong"] is True


# --------------------------------------------------------------------- #
# Graceful drain under concurrent load (with a mid-drain worker kill)
# --------------------------------------------------------------------- #
class TestGracefulDrain:
    def test_drain_with_inflight_burst_and_worker_kill(
        self, plans_dir, data, tmp_path
    ):
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root, data=data,
            total_epsilon=20.0, workers=2, seed=23, max_batch=8, max_wait=0.01,
        )
        # Worker 0 dies (pre-spend) on the first request dispatched to it —
        # some of the in-flight burst lands on a worker that is killed
        # mid-drain.
        failpoints_by_worker = {0: {"serving.worker.request": "crash"}}

        async def scenario():
            service = PlanService(config, failpoints_by_worker=failpoints_by_worker)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            tasks = [
                asyncio.ensure_future(client.execute("acme", "related", 0.01))
                for _ in range(64)
            ]
            await asyncio.sleep(0)  # every request hits the wire
            await service.shutdown()  # drain: stop accepting, serve the rest
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            await client.close()
            return outcomes, client

        outcomes, client = asyncio.run(scenario())
        # Every accepted request got exactly one terminal reply: a release
        # or a structured error — never a dropped line.
        assert len(outcomes) == 64
        served = [r for r in outcomes if isinstance(r, dict)]
        failed = [r for r in outcomes if isinstance(r, ServiceError)]
        assert len(served) + len(failed) == 64
        assert all(
            error.kind in ("WorkerCrashError", "WorkerTimeoutError")
            for error in failed
        )
        assert client.duplicate_replies == 0
        assert client.unmatched_replies == 0
        # The kill was pre-spend: the ledger replays to exactly the
        # successful releases, no lost or duplicated charges.
        replayed = inspect_ledger(ledger_root / "acme.journal")
        assert replayed["costs"] == len(served)
        assert replayed["spent_epsilon"] == pytest.approx(0.01 * len(served))
        assert replayed["dangling_intents"] == []
        probe = ledger_health(ledger_root / "acme.journal")
        assert probe["ok"] and probe["dangling_intents"] == 0


# --------------------------------------------------------------------- #
# The delay failpoint action itself
# --------------------------------------------------------------------- #
class TestDelayAction:
    def test_delay_action_sleeps_then_continues(self):
        with failpoints.active("serving.worker.request", "delay:0.1"):
            started = time.monotonic()
            failpoints.fire("serving.worker.request")
            elapsed = time.monotonic() - started
        assert 0.1 <= elapsed < 1.0

    def test_malformed_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            failpoints.arm("serving.worker.request", "delay:soon")
        with pytest.raises(ValueError, match="negative"):
            failpoints.arm("serving.worker.request", "delay:-1")
        with pytest.raises(ValueError, match="unknown failpoint action"):
            failpoints.arm("serving.worker.request", "explode")
