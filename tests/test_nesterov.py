"""Unit tests for the Nesterov projected-gradient solver (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.nesterov import (
    NesterovResult,
    nesterov_projected_gradient,
    quadratic_l_subproblem,
)
from repro.linalg.projection import project_columns_l1


def _simple_quadratic(target):
    """G(L) = 0.5 ||L - target||_F^2 with gradient L - target."""

    def objective(l):
        return 0.5 * float(np.sum((l - target) ** 2))

    def gradient(l):
        return l - target

    return objective, gradient


class TestNesterovSolver:
    def test_unconstrained_minimum_inside_ball(self):
        target = np.full((3, 2), 0.1)
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((3, 2)))
        assert np.allclose(result.solution, target, atol=1e-6)

    def test_constrained_minimum_is_projection(self):
        # Minimum of ||L - T||^2 over the feasible set is the projection of T.
        rng = np.random.default_rng(0)
        target = rng.standard_normal((4, 3)) * 3
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((4, 3)), max_iters=500)
        assert np.allclose(result.solution, project_columns_l1(target), atol=1e-5)

    def test_solution_always_feasible(self):
        rng = np.random.default_rng(1)
        target = rng.standard_normal((5, 7)) * 10
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((5, 7)), max_iters=50)
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-9)

    def test_infeasible_start_projected(self):
        target = np.zeros((2, 2))
        objective, gradient = _simple_quadratic(target)
        start = np.full((2, 2), 5.0)
        result = nesterov_projected_gradient(objective, gradient, start, max_iters=1)
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-9)

    def test_objective_history_decreases_overall(self):
        rng = np.random.default_rng(2)
        target = rng.standard_normal((3, 4))
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((3, 4)), max_iters=100)
        assert result.objective_history[-1] <= result.objective_history[0] + 1e-12

    def test_returns_result_type(self):
        objective, gradient = _simple_quadratic(np.zeros((2, 2)))
        result = nesterov_projected_gradient(objective, gradient, np.zeros((2, 2)), max_iters=3)
        assert isinstance(result, NesterovResult)
        assert result.iterations <= 3

    def test_converges_flag(self):
        objective, gradient = _simple_quadratic(np.zeros((2, 2)))
        result = nesterov_projected_gradient(objective, gradient, np.zeros((2, 2)), max_iters=100)
        assert result.converged

    def test_respects_custom_radius(self):
        rng = np.random.default_rng(3)
        target = rng.standard_normal((3, 3)) * 5
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(
            objective, gradient, np.zeros((3, 3)), radius=2.0, max_iters=300
        )
        assert np.all(np.abs(result.solution).sum(axis=0) <= 2 + 1e-8)

    def test_custom_projection_l2(self):
        from repro.linalg.projection import project_columns_l2

        rng = np.random.default_rng(7)
        target = rng.standard_normal((4, 5)) * 3
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(
            objective,
            gradient,
            np.zeros((4, 5)),
            max_iters=400,
            projection=project_columns_l2,
        )
        # The minimiser over per-column L2 balls is the per-column radial
        # projection of the target.
        assert np.allclose(result.solution, project_columns_l2(target), atol=1e-5)
        assert np.all(np.sqrt(np.sum(result.solution**2, axis=0)) <= 1 + 1e-8)


class TestQuadraticLSubproblem:
    def test_objective_matches_formula(self):
        rng = np.random.default_rng(4)
        b = rng.standard_normal((5, 3))
        w = rng.standard_normal((5, 6))
        pi = rng.standard_normal((5, 6))
        beta = 2.5
        objective, _ = quadratic_l_subproblem(b, w, pi, beta)
        l = rng.standard_normal((3, 6)) * 0.1
        expected = 0.5 * beta * np.trace(l.T @ b.T @ b @ l) - np.trace((beta * w + pi).T @ b @ l)
        assert objective(l) == pytest.approx(expected)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(5)
        b = rng.standard_normal((4, 2))
        w = rng.standard_normal((4, 3))
        pi = rng.standard_normal((4, 3))
        objective, gradient = quadratic_l_subproblem(b, w, pi, 1.7)
        l = rng.standard_normal((2, 3)) * 0.1
        grad = gradient(l)
        for i in range(2):
            for j in range(3):
                delta = np.zeros((2, 3))
                delta[i, j] = 1e-6
                numeric = (objective(l + delta) - objective(l - delta)) / 2e-6
                assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_solving_subproblem_fits_w(self):
        # With pi = 0 and large beta, the minimiser approximately solves
        # min ||W - B L|| over the feasible set.
        rng = np.random.default_rng(6)
        b = rng.standard_normal((6, 2))
        l_true = project_columns_l1(rng.standard_normal((2, 8)))
        w = b @ l_true
        objective, gradient = quadratic_l_subproblem(b, w, np.zeros_like(w), 100.0)
        result = nesterov_projected_gradient(
            objective, gradient, np.zeros((2, 8)), max_iters=800, lipschitz_init=100.0
        )
        assert np.linalg.norm(w - b @ result.solution) < 1e-2 * np.linalg.norm(w)
