"""Unit tests for the Nesterov projected-gradient solver (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.nesterov import (
    NesterovResult,
    nesterov_projected_gradient,
    quadratic_l_subproblem,
)
from repro.linalg.projection import project_columns_l1


def _simple_quadratic(target):
    """G(L) = 0.5 ||L - target||_F^2 with gradient L - target."""

    def objective(l):
        return 0.5 * float(np.sum((l - target) ** 2))

    def gradient(l):
        return l - target

    return objective, gradient


class TestNesterovSolver:
    def test_unconstrained_minimum_inside_ball(self):
        target = np.full((3, 2), 0.1)
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((3, 2)))
        assert np.allclose(result.solution, target, atol=1e-6)

    def test_constrained_minimum_is_projection(self):
        # Minimum of ||L - T||^2 over the feasible set is the projection of T.
        rng = np.random.default_rng(0)
        target = rng.standard_normal((4, 3)) * 3
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((4, 3)), max_iters=500)
        assert np.allclose(result.solution, project_columns_l1(target), atol=1e-5)

    def test_solution_always_feasible(self):
        rng = np.random.default_rng(1)
        target = rng.standard_normal((5, 7)) * 10
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((5, 7)), max_iters=50)
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-9)

    def test_infeasible_start_projected(self):
        target = np.zeros((2, 2))
        objective, gradient = _simple_quadratic(target)
        start = np.full((2, 2), 5.0)
        result = nesterov_projected_gradient(objective, gradient, start, max_iters=1)
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-9)

    def test_objective_history_decreases_overall(self):
        rng = np.random.default_rng(2)
        target = rng.standard_normal((3, 4))
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(objective, gradient, np.zeros((3, 4)), max_iters=100)
        assert result.objective_history[-1] <= result.objective_history[0] + 1e-12

    def test_returns_result_type(self):
        objective, gradient = _simple_quadratic(np.zeros((2, 2)))
        result = nesterov_projected_gradient(objective, gradient, np.zeros((2, 2)), max_iters=3)
        assert isinstance(result, NesterovResult)
        assert result.iterations <= 3

    def test_converges_flag(self):
        objective, gradient = _simple_quadratic(np.zeros((2, 2)))
        result = nesterov_projected_gradient(objective, gradient, np.zeros((2, 2)), max_iters=100)
        assert result.converged

    def test_respects_custom_radius(self):
        rng = np.random.default_rng(3)
        target = rng.standard_normal((3, 3)) * 5
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(
            objective, gradient, np.zeros((3, 3)), radius=2.0, max_iters=300
        )
        assert np.all(np.abs(result.solution).sum(axis=0) <= 2 + 1e-8)

    def test_custom_projection_l2(self):
        from repro.linalg.projection import project_columns_l2

        rng = np.random.default_rng(7)
        target = rng.standard_normal((4, 5)) * 3
        objective, gradient = _simple_quadratic(target)
        result = nesterov_projected_gradient(
            objective,
            gradient,
            np.zeros((4, 5)),
            max_iters=400,
            projection=project_columns_l2,
        )
        # The minimiser over per-column L2 balls is the per-column radial
        # projection of the target.
        assert np.allclose(result.solution, project_columns_l2(target), atol=1e-5)
        assert np.all(np.sqrt(np.sum(result.solution**2, axis=0)) <= 1 + 1e-8)


class TestQuadraticFastPath:
    """The quadratic=(K, C) specialised loop must agree with the generic
    closure-driven loop: same schedule, same math, cached Hessian products."""

    def _problem(self, seed, r=4, n=6):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((8, r))
        k_matrix = b.T @ b
        linear = rng.standard_normal((r, n))
        objective = lambda l: 0.5 * float(np.vdot(l, k_matrix @ l)) - float(
            np.vdot(linear, l)
        )
        gradient = lambda l: k_matrix @ l - linear
        return k_matrix, linear, objective, gradient

    def test_matches_generic_loop(self):
        k_matrix, linear, objective, gradient = self._problem(0)
        start = np.zeros((4, 6))
        lipschitz = float(np.linalg.eigvalsh(k_matrix)[-1])
        generic = nesterov_projected_gradient(
            objective, gradient, start, max_iters=200, lipschitz_init=lipschitz
        )
        fast = nesterov_projected_gradient(
            None, None, start, max_iters=200, lipschitz_init=lipschitz,
            quadratic=(k_matrix, linear),
        )
        # Identical minimisation problem: both land on the same solution.
        assert np.allclose(fast.solution, generic.solution, atol=1e-6)
        assert fast.objective == pytest.approx(generic.objective, abs=1e-9)

    def test_solution_feasible(self):
        k_matrix, linear, _, _ = self._problem(1)
        result = nesterov_projected_gradient(
            None, None, np.zeros((4, 6)), max_iters=300,
            lipschitz_init=float(np.linalg.eigvalsh(k_matrix)[-1]),
            quadratic=(k_matrix, linear),
        )
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-9)

    def test_final_lipschitz_returned(self):
        k_matrix, linear, _, _ = self._problem(2)
        result = nesterov_projected_gradient(
            None, None, np.zeros((4, 6)), max_iters=50, lipschitz_init=10.0,
            quadratic=(k_matrix, linear),
        )
        assert result.final_lipschitz is not None
        assert result.final_lipschitz > 0

    def test_first_iteration_skips_redundant_objective_eval(self):
        # The extrapolated point of iteration 1 IS the initial iterate, so
        # its objective must be reused from history, not re-evaluated.
        target = np.full((3, 2), 0.05)
        calls = {"count": 0}

        def objective(l):
            calls["count"] += 1
            return 0.5 * float(np.sum((l - target) ** 2))

        nesterov_projected_gradient(
            objective, lambda l: l - target, np.zeros((3, 2)), max_iters=1
        )
        # history[0] + one backtracking trial — no second eval at the
        # (identical) extrapolated point.
        assert calls["count"] == 2


class TestQuadraticLSubproblem:
    def test_objective_matches_formula(self):
        rng = np.random.default_rng(4)
        b = rng.standard_normal((5, 3))
        w = rng.standard_normal((5, 6))
        pi = rng.standard_normal((5, 6))
        beta = 2.5
        objective, _ = quadratic_l_subproblem(b, w, pi, beta)
        l = rng.standard_normal((3, 6)) * 0.1
        expected = 0.5 * beta * np.trace(l.T @ b.T @ b @ l) - np.trace((beta * w + pi).T @ b @ l)
        assert objective(l) == pytest.approx(expected)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(5)
        b = rng.standard_normal((4, 2))
        w = rng.standard_normal((4, 3))
        pi = rng.standard_normal((4, 3))
        objective, gradient = quadratic_l_subproblem(b, w, pi, 1.7)
        l = rng.standard_normal((2, 3)) * 0.1
        grad = gradient(l)
        for i in range(2):
            for j in range(3):
                delta = np.zeros((2, 3))
                delta[i, j] = 1e-6
                numeric = (objective(l + delta) - objective(l - delta)) / 2e-6
                assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_solving_subproblem_fits_w(self):
        # With pi = 0 and large beta, the minimiser approximately solves
        # min ||W - B L|| over the feasible set.
        rng = np.random.default_rng(6)
        b = rng.standard_normal((6, 2))
        l_true = project_columns_l1(rng.standard_normal((2, 8)))
        w = b @ l_true
        objective, gradient = quadratic_l_subproblem(b, w, np.zeros_like(w), 100.0)
        result = nesterov_projected_gradient(
            objective, gradient, np.zeros((2, 8)), max_iters=800, lipschitz_init=100.0
        )
        assert np.linalg.norm(w - b @ result.solution) < 1e-2 * np.linalg.norm(w)
