"""Unit tests for L1-ball / simplex projections (Algorithm 2's Formula 11)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.projection import (
    l1_ball_distance,
    project_columns_l1,
    project_l1_ball,
    project_simplex,
)


class TestProjectSimplex:
    def test_already_on_simplex(self):
        v = np.array([0.5, 0.5])
        assert np.allclose(project_simplex(v), v)

    def test_sums_to_radius(self):
        result = project_simplex(np.array([3.0, 1.0, 0.2]), radius=1.0)
        assert result.sum() == pytest.approx(1.0)
        assert np.all(result >= 0)

    def test_custom_radius(self):
        result = project_simplex(np.array([5.0, 5.0]), radius=4.0)
        assert result.sum() == pytest.approx(4.0)

    def test_single_coordinate(self):
        assert project_simplex(np.array([7.0]), radius=2.0) == pytest.approx([2.0])

    def test_dominant_coordinate_takes_all(self):
        result = project_simplex(np.array([10.0, 0.0, 0.0]))
        assert np.allclose(result, [1.0, 0.0, 0.0])

    def test_negative_entries_zeroed(self):
        result = project_simplex(np.array([-5.0, 2.0]))
        assert result[0] == 0.0
        assert result[1] == pytest.approx(1.0)

    def test_matches_quadratic_characterisation(self):
        # The projection minimises ||w - v||; compare against a brute-force
        # check: no feasible perturbation improves the distance.
        rng = np.random.default_rng(0)
        v = rng.standard_normal(6)
        w = project_simplex(v)
        base = np.sum((w - v) ** 2)
        for _ in range(200):
            candidate = np.abs(rng.standard_normal(6))
            candidate /= candidate.sum()
            assert np.sum((candidate - v) ** 2) >= base - 1e-9

    def test_rejects_bad_radius(self):
        with pytest.raises(ValidationError):
            project_simplex(np.ones(3), radius=0.0)


class TestProjectL1Ball:
    def test_inside_unchanged(self):
        v = np.array([0.2, -0.3])
        assert np.allclose(project_l1_ball(v), v)

    def test_inside_returns_copy(self):
        v = np.array([0.1, 0.1])
        result = project_l1_ball(v)
        result[0] = 99.0
        assert v[0] == 0.1

    def test_outside_lands_on_boundary(self):
        result = project_l1_ball(np.array([3.0, -4.0]))
        assert np.abs(result).sum() == pytest.approx(1.0)

    def test_preserves_signs(self):
        result = project_l1_ball(np.array([3.0, -4.0]))
        assert result[0] >= 0
        assert result[1] <= 0

    def test_idempotent(self):
        v = np.array([5.0, -2.0, 1.0])
        once = project_l1_ball(v)
        twice = project_l1_ball(once)
        assert np.allclose(once, twice)

    def test_is_true_projection(self):
        rng = np.random.default_rng(1)
        v = rng.standard_normal(5) * 3
        w = project_l1_ball(v)
        base = np.sum((w - v) ** 2)
        for _ in range(200):
            candidate = rng.standard_normal(5)
            norm = np.abs(candidate).sum()
            if norm > 1:
                candidate /= norm
            assert np.sum((candidate - v) ** 2) >= base - 1e-9


class TestProjectColumnsL1:
    def test_all_inside_unchanged(self):
        matrix = np.full((3, 4), 0.1)
        assert np.allclose(project_columns_l1(matrix), matrix)

    def test_columns_feasible_after(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((6, 10)) * 5
        result = project_columns_l1(matrix)
        assert np.all(np.abs(result).sum(axis=0) <= 1.0 + 1e-9)

    def test_matches_per_column_projection(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((5, 8)) * 2
        result = project_columns_l1(matrix)
        for j in range(matrix.shape[1]):
            expected = project_l1_ball(matrix[:, j])
            assert np.allclose(result[:, j], expected)

    def test_mixed_inside_outside(self):
        matrix = np.array([[0.1, 5.0], [0.1, -5.0]])
        result = project_columns_l1(matrix)
        assert np.allclose(result[:, 0], matrix[:, 0])  # inside untouched
        assert np.abs(result[:, 1]).sum() == pytest.approx(1.0)

    def test_custom_radius(self):
        matrix = np.array([[4.0], [4.0]])
        result = project_columns_l1(matrix, radius=2.0)
        assert np.abs(result).sum() == pytest.approx(2.0)

    def test_does_not_mutate_input(self):
        matrix = np.full((2, 2), 3.0)
        copy = matrix.copy()
        project_columns_l1(matrix)
        assert np.array_equal(matrix, copy)

    def test_single_row_matrix(self):
        result = project_columns_l1(np.array([[2.0, -3.0, 0.5]]))
        assert np.allclose(result, [[1.0, -1.0, 0.5]])


class TestL1BallDistance:
    def test_zero_for_feasible(self):
        assert l1_ball_distance(np.full((3, 2), 0.1)) == 0.0

    def test_positive_for_infeasible(self):
        assert l1_ball_distance(np.full((3, 2), 1.0)) > 0.0

    def test_scales_with_violation(self):
        near = l1_ball_distance(np.full((2, 1), 0.6))
        far = l1_ball_distance(np.full((2, 1), 5.0))
        assert far > near
