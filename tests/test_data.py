"""Unit tests for the dataset substrate."""

import numpy as np
import pytest

from repro.data.datasets import (
    NET_TRACE_SIZE,
    SEARCH_LOGS_SIZE,
    SOCIAL_NETWORK_SIZE,
    dataset_names,
    load_dataset,
    net_trace,
    search_logs,
    social_network,
)
from repro.data.transforms import merge_to_domain, normalize_counts, pad_to_length
from repro.exceptions import ValidationError


class TestSearchLogs:
    def test_default_size_matches_paper(self):
        assert search_logs(size=4096).size == 4096
        assert SEARCH_LOGS_SIZE == 65_536

    def test_non_negative_integers(self):
        x = search_logs(size=2048, seed=0)
        assert np.all(x >= 0)
        assert np.allclose(x, np.round(x))

    def test_deterministic(self):
        assert np.array_equal(search_logs(size=512, seed=1), search_logs(size=512, seed=1))

    def test_seed_changes_data(self):
        assert not np.array_equal(search_logs(size=512, seed=1), search_logs(size=512, seed=2))

    def test_has_bursts(self):
        x = search_logs(size=4096, seed=0)
        # bursty: max should dwarf the median background
        assert x.max() > 10 * np.median(x)


class TestNetTrace:
    def test_sizes(self):
        assert net_trace(size=1024).size == 1024
        assert NET_TRACE_SIZE == 32_768

    def test_heavy_tail(self):
        x = net_trace(size=8192, seed=0)
        assert np.median(x) <= 1.0  # most hosts quiet
        assert x.max() > 1000.0  # some hosts very hot

    def test_non_negative(self):
        assert np.all(net_trace(size=1024, seed=3) >= 0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValidationError):
            net_trace(size=16, zipf_exponent=1.0)


class TestSocialNetwork:
    def test_sizes(self):
        assert social_network(size=500).size == 500
        assert SOCIAL_NETWORK_SIZE == 11_342

    def test_power_law_decay(self):
        x = social_network(size=2000, seed=0)
        # counts at low degrees dominate the tail by orders of magnitude
        assert x[:10].sum() > 100 * max(x[-100:].sum(), 1.0)

    def test_total_users_approximate(self):
        x = social_network(size=2000, seed=0, users=1_000_000)
        assert x.sum() == pytest.approx(1_000_000, rel=0.05)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValidationError):
            social_network(size=16, gamma=0.5)


class TestLoadDataset:
    def test_names(self):
        assert dataset_names() == ["search_logs", "net_trace", "social_network"]

    def test_loads_each(self):
        for name in dataset_names():
            assert load_dataset(name, size=256).size == 256

    def test_name_normalisation(self):
        a = load_dataset("Search Logs", size=128, seed=5)
        b = load_dataset("search_logs", size=128, seed=5)
        assert np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("census")


class TestMergeToDomain:
    def test_preserves_total(self):
        x = np.arange(100.0)
        merged = merge_to_domain(x, 7)
        assert merged.sum() == pytest.approx(x.sum())

    def test_output_size(self):
        assert merge_to_domain(np.ones(100), 7).size == 7

    def test_even_split(self):
        merged = merge_to_domain(np.ones(8), 4)
        assert np.allclose(merged, 2.0)

    def test_uneven_split_front_loaded(self):
        merged = merge_to_domain(np.ones(10), 4)
        # 10 = 3+3+2+2
        assert np.allclose(merged, [3.0, 3.0, 2.0, 2.0])

    def test_identity_when_same_size(self):
        x = np.arange(5.0)
        assert np.array_equal(merge_to_domain(x, 5), x)

    def test_rejects_expansion(self):
        with pytest.raises(ValidationError):
            merge_to_domain(np.ones(4), 8)

    def test_order_preserved(self):
        x = np.concatenate([np.zeros(50), np.ones(50)])
        merged = merge_to_domain(x, 2)
        assert merged[0] == 0.0
        assert merged[1] == 50.0


class TestPadAndNormalize:
    def test_pad_length(self):
        padded = pad_to_length(np.ones(3), 5)
        assert padded.size == 5
        assert np.allclose(padded, [1, 1, 1, 0, 0])

    def test_pad_custom_value(self):
        assert pad_to_length(np.ones(1), 2, value=9.0)[1] == 9.0

    def test_pad_rejects_shrink(self):
        with pytest.raises(ValidationError):
            pad_to_length(np.ones(5), 3)

    def test_pad_same_size_copies(self):
        x = np.ones(3)
        padded = pad_to_length(x, 3)
        padded[0] = 5.0
        assert x[0] == 1.0

    def test_normalize(self):
        assert normalize_counts(np.array([1.0, 3.0])).sum() == pytest.approx(1.0)

    def test_normalize_zero_vector(self):
        assert np.array_equal(normalize_counts(np.zeros(3)), np.zeros(3))
