"""Tests for the plan/execute API: ExecutionPlan, PlanCache, accountant
routing, and the budget-accounting edge cases of the executor."""

import json

import numpy as np
import pytest

from repro.engine import PlanCache, PrivateQueryEngine
from repro.engine.plan import ExecutionPlan, PlanCandidate, build_plan, plan_key
from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.io.serialization import load_plan, save_plan
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.privacy.accountant import ApproxDPAccountant, PureDPAccountant
from repro.workloads import wdiscrete, wrange, wrelated

FAST_LRM = {"LRM": {"max_outer": 15, "max_inner": 3, "nesterov_iters": 15, "stall_iters": 5}}


def _engine(budget=1.0, **kwargs):
    kwargs.setdefault("mechanism_kwargs", FAST_LRM)
    kwargs.setdefault("seed", 0)
    return PrivateQueryEngine(np.arange(64.0), total_budget=budget, **kwargs)


class TestPlanning:
    def test_plan_returns_execution_plan(self):
        plan = _engine().plan(wrange(6, 64, seed=0), mechanism="LM")
        assert isinstance(plan, ExecutionPlan)
        assert plan.mechanism_label == "LM"
        assert plan.mechanism.is_fitted
        assert plan.shape == (6, 64)

    def test_plan_consumes_no_budget(self):
        engine = _engine()
        engine.plan(wrange(6, 64, seed=0))
        assert engine.spent_budget == 0.0

    def test_explain_lists_every_candidate(self):
        engine = _engine(candidates=("LM", "WM", "HM", "NOPE"))
        plan = engine.plan(wrange(6, 64, seed=0))
        report = plan.explain()
        for label in ("LM", "WM", "HM", "NOPE"):
            assert label in report
        assert "<- chosen" in report
        assert "failed" in report  # NOPE is reported, not hidden
        assert len(plan.candidates) == 4

    def test_explain_predicted_error_at_epsilon(self):
        plan = _engine().plan(wrange(6, 64, seed=0), mechanism="LM")
        report = plan.explain(epsilon=0.5)
        assert "eps=0.5" in report
        predicted = plan.predicted_error(0.5)
        assert predicted == pytest.approx(
            plan.mechanism.expected_squared_error(0.5)
        )

    def test_candidates_ranked_ascending(self):
        plan = _engine(candidates=("LM", "WM", "HM")).plan(wrange(6, 64, seed=0))
        errors = [c.expected_error for c in plan.candidates if c.ok]
        assert errors == sorted(errors)
        assert plan.candidates[0].chosen

    def test_all_candidates_fail_raises(self):
        with pytest.raises(ValidationError, match="no usable mechanism"):
            _engine(candidates=("NOPE",)).plan(wrange(6, 64, seed=0))

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="domain"):
            _engine().plan(wrange(4, 32, seed=0))

    def test_instance_not_mutated(self):
        mechanism = NoiseOnDataMechanism()
        plan = _engine().plan(wrange(6, 64, seed=0), mechanism=mechanism)
        assert not mechanism.is_fitted
        assert plan.mechanism is not mechanism
        assert plan.mechanism.is_fitted

    def test_instance_cache_key_stable_across_fitting(self):
        # The old cache keyed on str(mechanism).upper(), which embeds the
        # fitted/unfitted repr — the same instance mapped to a different key
        # after fitting and was silently refit. Instances now key by class
        # name, so unfitted and fitted instances share one plan.
        engine = _engine()
        wl = wrange(6, 64, seed=0)
        unfitted = NoiseOnDataMechanism()
        first = engine.plan(wl, mechanism=unfitted)
        second = engine.plan(wl, mechanism=unfitted)
        assert first is second
        fitted = NoiseOnDataMechanism().fit(wl)
        third = engine.plan(wl, mechanism=fitted)
        assert third is first

    def test_differently_configured_instance_bypasses_cache(self):
        # Same class, different constructor state: the cached plan's noise
        # calibration would be wrong for this instance, so it must get a
        # fresh plan (and the original cache entry must survive).
        engine = _engine()
        wl = wrange(6, 64, seed=0)
        default_plan = engine.plan(wl, mechanism=NoiseOnDataMechanism())
        custom_plan = engine.plan(wl, mechanism=NoiseOnDataMechanism(unit_sensitivity=2.0))
        assert custom_plan is not default_plan
        assert custom_plan.mechanism.unit_sensitivity == 2.0
        assert engine.plan(wl, mechanism=NoiseOnDataMechanism()) is default_plan

    def test_plan_key_spec_components(self):
        wl = wrange(6, 64, seed=0)
        assert plan_key(wl, "lm").endswith("|LM")
        assert plan_key(wl, NoiseOnDataMechanism()).endswith("|instance:NoiseOnDataMechanism")
        auto = plan_key(wl, "auto", candidates=("LM", "WM"))
        assert auto.endswith("|auto[LM,WM]")
        assert auto.startswith(f"6x64:{wl.content_digest}|")

    def test_prepare_returns_cached_plan_mechanism(self):
        engine = _engine()
        wl = wrelated(8, 64, s=2, seed=1)
        first = engine.prepare(wl, mechanism="LRM")
        second = engine.prepare(wl, mechanism="LRM")
        assert first is second
        assert first is engine.plan(wl, mechanism="LRM").mechanism

    def test_use_cache_false_replans(self):
        engine = _engine()
        wl = wrange(6, 64, seed=0)
        first = engine.plan(wl, mechanism="LM")
        second = engine.plan(wl, mechanism="LM", use_cache=False)
        assert first is not second

    def test_explain_rank_skips_failed_candidates(self):
        plan = _engine(candidates=("LM", "NOPE", "WM")).plan(wrange(6, 64, seed=0))
        # Force a failed candidate between two successes in display order.
        plan = ExecutionPlan(
            mechanism=plan.mechanism,
            mechanism_label=plan.mechanism_label,
            mechanism_spec=plan.mechanism_spec,
            workload_key=plan.workload_key,
            epsilon_hint=plan.epsilon_hint,
            candidates=[
                PlanCandidate("LM", expected_error=1.0, chosen=True),
                PlanCandidate("NOPE", failure="unknown mechanism"),
                PlanCandidate("WM", expected_error=2.0),
            ],
        )
        report = plan.explain()
        assert "1. LM" in report
        assert "x. NOPE" in report
        assert "2. WM" in report  # not rank 3: failures don't consume ranks

    def test_explain_no_closed_form_candidate_is_not_a_failure(self):
        # A chosen mechanism without an analytic error formula must render
        # as "no closed form", not as a failed candidate.
        from repro.mechanisms.base import Mechanism

        class EmpiricalOnly(Mechanism):
            name = "EMP"

            def _answer(self, x, epsilon, rng):
                return self.workload.answer(x)

        plan = _engine().plan(wrange(6, 64, seed=0), mechanism=EmpiricalOnly())
        report = plan.explain()
        assert "no closed form" in report
        assert "<- chosen" in report
        assert "failed" not in report

    def test_build_plan_standalone(self):
        plan = build_plan(wrange(6, 64, seed=0).matrix, mechanism="LM")
        assert plan.mechanism_label == "LM"
        assert plan.epsilon_hint == 0.1


class TestExecution:
    def test_execute_release_fields(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        release = engine.execute(plan, 0.25, non_negative=True)
        assert release.answers.shape == (6,)
        assert release.epsilon == 0.25
        assert release.delta == 0.0
        assert release.workload_key == plan.workload_key
        assert release.metadata["postprocess"] == {
            "non_negative": True, "integral": False, "consistent": False,
        }
        assert release.metadata["plan_key"] == plan.plan_key
        assert release.metadata["accountant"] == "pure-dp"
        assert engine.remaining_budget == pytest.approx(0.75)

    def test_execute_requires_plan(self):
        engine = _engine()
        with pytest.raises(ValidationError, match="ExecutionPlan"):
            engine.execute(wrange(6, 64, seed=0), 0.1)

    def test_rejected_release_leaves_audit_log_untouched(self):
        engine = _engine(budget=0.3)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        engine.execute(plan, 0.2)
        with pytest.raises(PrivacyBudgetError):
            engine.execute(plan, 0.2)
        assert len(engine.releases) == 1
        assert engine.spent_budget == pytest.approx(0.2)

    def test_exact_exhaustion_releases(self):
        engine = _engine(budget=0.3)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        for _ in range(3):
            engine.execute(plan, 0.1)
        assert engine.remaining_budget == 0.0
        assert len(engine.releases) == 3
        with pytest.raises(PrivacyBudgetError):
            engine.execute(plan, 1e-9)
        assert len(engine.releases) == 3

    def test_execute_many_atomic_success(self):
        engine = _engine(budget=0.5)
        plan_a = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        plan_b = engine.plan(wrange(4, 64, seed=1), mechanism="WM")
        releases = engine.execute_many([(plan_a, 0.25), (plan_b, 0.25)])
        assert [r.mechanism for r in releases] == ["LM", "WM"]
        assert engine.remaining_budget == 0.0
        assert len(engine.releases) == 2

    def test_execute_many_atomic_rejection(self):
        engine = _engine(budget=0.5)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        with pytest.raises(PrivacyBudgetError):
            engine.execute_many([(plan, 0.3), (plan, 0.3)])
        # Nothing spent, nothing released.
        assert engine.spent_budget == 0.0
        assert engine.releases == []

    def test_execute_many_per_request_postprocess(self):
        engine = _engine(budget=1.0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        plain, rounded = engine.execute_many(
            [(plan, 0.2), (plan, 0.2, {"integral": True, "non_negative": True})]
        )
        assert plain.metadata["postprocess"]["integral"] is False
        assert rounded.metadata["postprocess"]["integral"] is True
        assert np.allclose(rounded.answers, np.round(rounded.answers))
        assert np.all(rounded.answers >= 0)

    def test_execute_many_rejects_unknown_switch(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        with pytest.raises(ValidationError, match="unknown post-processing"):
            engine.execute_many([(plan, 0.1, {"nonneg": True})])
        assert engine.spent_budget == 0.0

    def test_execute_many_rejects_malformed_requests(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        for bad in ([plan], [(plan,)], [(plan, 0.1, ["integral"])], [(plan, 0.1, True)]):
            with pytest.raises(ValidationError):
                engine.execute_many(bad)
        assert engine.spent_budget == 0.0
        assert engine.releases == []

    def test_execute_many_validates_before_spending(self):
        engine = _engine(budget=1.0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        with pytest.raises(ValidationError):
            engine.execute_many([(plan, 0.1), ("not a plan", 0.1)])
        assert engine.spent_budget == 0.0
        assert engine.releases == []

    def test_execute_rolls_back_on_build_failure(self):
        # A release-build failure after the charge (the noise is discarded
        # unexposed) must restore the ledger instead of burning budget with
        # no audit entry.
        from repro.mechanisms.base import Mechanism

        class Exploding(Mechanism):
            name = "BOOM"

            def _answer(self, x, epsilon, rng):
                raise RuntimeError("boom")

        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism=Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            engine.execute(plan, 0.3)
        assert engine.spent_budget == 0.0
        assert engine.releases == []

    def test_execute_many_rolls_back_on_mid_batch_failure(self):
        # All-or-nothing also when producing a release fails after the
        # charge: the ledger is restored and the audit log stays untouched.
        from repro.mechanisms.base import Mechanism

        class Exploding(Mechanism):
            name = "BOOM"

            def _answer(self, x, epsilon, rng):
                raise RuntimeError("boom")

        engine = _engine(budget=1.0)
        good = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        bad = engine.plan(wrange(6, 64, seed=0), mechanism=Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            engine.execute_many([(good, 0.1), (bad, 0.1)])
        assert engine.spent_budget == 0.0
        assert engine.releases == []

    def test_execute_many_empty_rejected(self):
        with pytest.raises(ValidationError):
            _engine().execute_many([])

    def test_reproducible_across_engines(self):
        def run():
            engine = _engine()
            plan = engine.plan(wrange(4, 64, seed=0), mechanism="LM")
            return engine.execute(plan, 0.5).answers

        assert np.allclose(run(), run())

    def test_answer_workload_shim_warns_and_matches(self):
        engine = _engine()
        with pytest.warns(DeprecationWarning, match="answer_workload"):
            release = engine.answer_workload(wrange(6, 64, seed=0), epsilon=0.25, mechanism="LM")
        assert release.answers.shape == (6,)
        assert engine.spent_budget == pytest.approx(0.25)


class TestDeltaRouting:
    def test_delta_engine_uses_approx_accountant(self):
        engine = _engine(delta=1e-6)
        assert isinstance(engine.accountant, ApproxDPAccountant)
        assert engine.delta == 1e-6
        # Gaussian candidates join the default auto pool.
        for label in ("GLM", "GNOR", "GLRM"):
            assert label in engine.candidates

    def test_pure_engine_uses_pure_accountant(self):
        engine = _engine()
        assert isinstance(engine.accountant, PureDPAccountant)
        assert "GLM" not in engine.candidates

    def test_gaussian_release_tracks_eps_delta(self):
        engine = _engine(delta=1e-6)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        assert plan.requires_delta
        assert plan.delta == 1e-6  # engine delta injected into the mechanism
        release = engine.execute(plan, 0.3)
        assert release.delta == 1e-6
        assert release.metadata["accountant"] == "approx-dp"
        assert engine.spent_delta == pytest.approx(1e-6)
        assert engine.spent_budget == pytest.approx(0.3)

    def test_can_execute_knows_the_plan_delta(self):
        # The guard-then-execute pattern must be reliable: can_answer only
        # sees epsilon, but can_execute charges exactly what execute would,
        # including the Gaussian plan's per-release delta.
        engine = _engine(delta=1e-6)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        assert engine.can_execute(plan, 0.1)
        engine.execute(plan, 0.1)  # exhausts the delta pool by design
        assert engine.can_answer(0.1)  # eps-only view still says yes...
        assert not engine.can_execute(plan, 0.1)  # ...the plan-aware guard says no
        with pytest.raises(PrivacyBudgetError):
            engine.execute(plan, 0.1)

    def test_can_execute_is_a_predicate_not_a_validator(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        assert not engine.can_execute("not a plan", 0.1)
        assert not engine.can_execute(plan, -1.0)

    def test_pure_release_on_delta_engine_spends_no_delta(self):
        engine = _engine(delta=1e-6)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        release = engine.execute(plan, 0.3)
        assert release.delta == 0.0
        assert engine.spent_delta == 0.0

    def test_pure_engine_rejects_gaussian_release(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        with pytest.raises(PrivacyBudgetError, match="pure eps-DP"):
            engine.execute(plan, 0.3)
        assert engine.releases == []
        assert engine.spent_budget == 0.0

    def test_delta_budget_exhaustion(self):
        engine = _engine(delta=1e-6)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        engine.execute(plan, 0.1)
        with pytest.raises(PrivacyBudgetError):
            engine.execute(plan, 0.1)  # delta pool exhausted
        assert len(engine.releases) == 1

    def test_can_answer_with_delta(self):
        engine = _engine(delta=1e-6)
        assert engine.can_answer(0.5, delta=1e-6)
        assert not engine.can_answer(0.5, delta=1e-5)


class TestPlanSerialization:
    def test_roundtrip_cheap_mechanism(self, tmp_path):
        plan = build_plan(wrange(6, 64, seed=0), mechanism="LM")
        path = tmp_path / "lm.plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.mechanism_label == "LM"
        assert restored.workload_key == plan.workload_key
        assert restored.epsilon_hint == plan.epsilon_hint
        assert [c.label for c in restored.candidates] == [c.label for c in plan.candidates]
        assert restored.predicted_error(0.5) == pytest.approx(plan.predicted_error(0.5))

    def test_roundtrip_lrm_keeps_decomposition(self, tmp_path):
        plan = build_plan(
            wrelated(8, 64, s=2, seed=1), mechanism="LRM", mechanism_kwargs=FAST_LRM
        )
        path = tmp_path / "lrm.plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert np.array_equal(
            restored.mechanism.decomposition.b, plan.mechanism.decomposition.b
        )
        assert np.array_equal(
            restored.mechanism.decomposition.l, plan.mechanism.decomposition.l
        )
        x = np.arange(64.0)
        assert np.allclose(
            restored.mechanism.answer(x, 0.5, rng=7), plan.mechanism.answer(x, 0.5, rng=7)
        )

    def test_roundtrip_gaussian_keeps_delta(self, tmp_path):
        plan = build_plan(
            wrange(6, 64, seed=0), mechanism="GLM",
            mechanism_kwargs={"GLM": {"delta": 1e-5}},
        )
        path = tmp_path / "glm.plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.delta == 1e-5
        assert restored.requires_delta

    def test_glrm_plan_from_delta_engine_reloads(self, tmp_path):
        # Regression: the engine injects delta into GLRM's fit_kwargs, and
        # load_plan also passes the stored delta explicitly — the reload
        # must not die on a duplicate 'delta' keyword.
        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, delta=1e-6, seed=0,
            plan_cache=tmp_path / "plans",
            mechanism_kwargs={"GLRM": dict(FAST_LRM["LRM"])},
        )
        plan = engine.plan(wrelated(8, 64, s=2, seed=1), mechanism="GLRM")
        assert plan.fit_kwargs["delta"] == 1e-6
        fresh = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, delta=1e-6, seed=0,
            plan_cache=tmp_path / "plans",
        )
        reloaded = fresh.plan(wrelated(8, 64, s=2, seed=1), mechanism="GLRM")
        assert fresh.plan_cache.disk_hits == 1
        assert reloaded.delta == 1e-6
        assert np.array_equal(
            reloaded.mechanism.decomposition.b, plan.mechanism.decomposition.b
        )

    @staticmethod
    def _tamper(path, name, mutate):
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload[name] = mutate(payload[name])
        np.savez_compressed(path, **payload)

    def test_dtype_swapped_arrays_rejected(self, tmp_path):
        # Same raw bytes, different dtype: l.view(int64) leaves the buffer
        # identical, so the digest must cover the dtype — a reinterpreted L
        # yields a garbage sensitivity (crafted bits could under-noise).
        plan = build_plan(
            wrelated(8, 64, s=2, seed=1), mechanism="LRM", mechanism_kwargs=FAST_LRM
        )
        path = tmp_path / "lrm.plan.npz"
        save_plan(plan, path)
        self._tamper(path, "l", lambda l: l.view(np.int64))
        with pytest.raises(ValidationError, match="integrity"):
            load_plan(path)

    def test_tampered_workload_rejected(self, tmp_path):
        plan = build_plan(wdiscrete(6, 64, seed=0), mechanism="LM")
        path = tmp_path / "lm.plan.npz"
        save_plan(plan, path)
        self._tamper(path, "workload", lambda w: w + 1.0)
        with pytest.raises(ValidationError, match="integrity"):
            load_plan(path)

    def test_tampered_operator_workload_rejected(self, tmp_path):
        # Implicit workloads archive their operator arrays instead of a
        # dense matrix; shifting an interval endpoint (still in-range, so
        # the operator itself reconstructs) must fail the digest check.
        plan = build_plan(wrange(6, 64, seed=0), mechanism="LM")
        path = tmp_path / "lm.plan.npz"
        save_plan(plan, path)
        self._tamper(path, "op_lows", lambda lows: np.zeros_like(lows))
        with pytest.raises(ValidationError, match="integrity"):
            load_plan(path)

    def test_tampered_decomposition_rejected(self, tmp_path):
        # Shrinking L's column norms would mis-calibrate the noise scale —
        # the integrity check must cover the strategy arrays, not just W.
        plan = build_plan(
            wrelated(8, 64, s=2, seed=1), mechanism="LRM", mechanism_kwargs=FAST_LRM
        )
        path = tmp_path / "lrm.plan.npz"
        save_plan(plan, path)
        self._tamper(path, "l", lambda l: l * 0.01)
        with pytest.raises(ValidationError, match="integrity"):
            load_plan(path)

    def test_default_instance_plan_is_serializable(self, tmp_path):
        # A default-constructed registry instance refits identically, so it
        # may be persisted.
        plan = build_plan(wrange(6, 64, seed=0), mechanism=NoiseOnDataMechanism())
        path = tmp_path / "lm.plan.npz"
        save_plan(plan, path)
        assert load_plan(path).mechanism_label == "LM"

    def test_customized_instance_plan_roundtrips_state(self, tmp_path):
        # Regression: constructor state of instance-built plans is captured
        # in fit_kwargs, so the restored mechanism keeps its calibration
        # (a refit with defaults would silently change the noise scale).
        plan = build_plan(
            wrange(6, 64, seed=0), mechanism=NoiseOnDataMechanism(unit_sensitivity=2.0)
        )
        path = tmp_path / "custom.plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.mechanism.unit_sensitivity == 2.0
        assert restored.predicted_error(0.5) == pytest.approx(plan.predicted_error(0.5))

    def test_customized_auto_candidate_persists_state(self, tmp_path):
        # Same guarantee through the auto pool: the winning instance's
        # unit_sensitivity=2.0 survives the disk round trip.
        cache = PlanCache(directory=tmp_path / "plans")
        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, seed=0, plan_cache=cache,
            candidates=(NoiseOnDataMechanism(unit_sensitivity=2.0),),
        )
        plan = engine.plan(wrange(6, 64, seed=0))
        assert plan.mechanism.unit_sensitivity == 2.0
        fresh = PlanCache(directory=tmp_path / "plans")
        restored = fresh.get(plan.plan_key)
        assert restored is not None
        assert restored.mechanism.unit_sensitivity == 2.0

    def test_lrm_instance_plan_roundtrips_constructor_state(self, tmp_path):
        # The restored LowRankMechanism must carry the instance's solver
        # configuration, not defaults — otherwise the engine's
        # same-configuration guard would refit on every restart (and a
        # default-instance caller would be served the wrong decomposition).
        from repro.core.lrm import LowRankMechanism

        custom = LowRankMechanism(gamma=0.5, **FAST_LRM["LRM"])
        plan = build_plan(wrelated(8, 64, s=2, seed=1), mechanism=custom)
        path = tmp_path / "lrm-custom.plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.mechanism.gamma == 0.5
        assert restored.mechanism.max_outer == FAST_LRM["LRM"]["max_outer"]
        assert np.array_equal(
            restored.mechanism.decomposition.b, plan.mechanism.decomposition.b
        )

    def test_lrm_instance_with_foreign_attrs_rejected(self, tmp_path):
        # A foreign public attribute would persist an archive load_plan can
        # never rebuild (unexpected constructor kwarg) — the save gate must
        # reject it so the disk cache degrades to memory-only instead of
        # silently refitting on every restart.
        from repro.core.lrm import LowRankMechanism

        annotated = LowRankMechanism(**FAST_LRM["LRM"])
        annotated.note = "analyst"
        plan = build_plan(wrelated(8, 64, s=2, seed=1), mechanism=annotated)
        with pytest.raises(ValidationError, match="not serializable"):
            save_plan(plan, tmp_path / "annotated.plan.npz")

    def test_lrm_subclass_plan_rejected(self, tmp_path):
        # An unknown low-rank subclass must not round-trip into a base-class
        # mechanism with differently-calibrated noise.
        from repro.core.lrm import LowRankMechanism

        class L2Variant(LowRankMechanism):
            decomposition_norm = "l2"

        plan = build_plan(
            wrelated(8, 64, s=2, seed=1),
            mechanism=L2Variant(**FAST_LRM["LRM"]),
        )
        with pytest.raises(ValidationError, match="not serializable"):
            save_plan(plan, tmp_path / "l2.plan.npz")

    def test_lowrank_archive_missing_arrays_rejected(self, tmp_path):
        # Stripping b/l must not silently fall through to a full refit.
        plan = build_plan(
            wrelated(8, 64, s=2, seed=1), mechanism="LRM", mechanism_kwargs=FAST_LRM
        )
        path = tmp_path / "lrm.plan.npz"
        save_plan(plan, path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload.pop("b")
        payload.pop("l")
        np.savez_compressed(path, **payload)
        with pytest.raises(ValidationError, match="integrity"):
            load_plan(path)

    def test_workload_key_mismatch_rejected(self, tmp_path):
        import json

        plan = build_plan(wrange(6, 64, seed=0), mechanism="LM")
        path = tmp_path / "lm.plan.npz"
        save_plan(plan, path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        metadata = json.loads(bytes(payload["metadata"].tobytes()).decode())
        metadata["plan"]["workload_key"] = "6x64:" + "0" * 40
        payload["metadata"] = np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValidationError, match="workload_key"):
            load_plan(path)

    def test_unfitted_plan_rejected(self, tmp_path):
        plan = build_plan(wrange(6, 64, seed=0), mechanism="LM")
        plan.mechanism._workload = None
        with pytest.raises(ValidationError, match="fitted"):
            save_plan(plan, tmp_path / "unfitted.plan.npz")


class TestPlanCache:
    def test_memory_cache_reuse(self):
        engine = _engine()
        wl = wrelated(8, 64, s=2, seed=1)
        first = engine.plan(wl, mechanism="LRM")
        second = engine.plan(wl, mechanism="LRM")
        assert first is second
        assert engine.plan_cache.hits == 1

    def test_disk_roundtrip_identical_answers(self, tmp_path):
        # The acceptance path: plan in one engine, persist, load in a fresh
        # engine ("new process"), execute — identical answers under a fixed
        # seed, with no refit.
        data = np.arange(64.0)
        wl = wrelated(8, 64, s=2, seed=1)
        first = PrivateQueryEngine(
            data, total_budget=1.0, mechanism_kwargs=FAST_LRM, seed=3,
            plan_cache=tmp_path / "plans",
        )
        plan = first.plan(wl, mechanism="LRM")
        assert (tmp_path / "plans").exists()

        fresh = PrivateQueryEngine(
            data, total_budget=1.0, seed=3, plan_cache=tmp_path / "plans",
        )
        reloaded = fresh.plan(wl, mechanism="LRM")
        assert fresh.plan_cache.disk_hits == 1
        # Identical fitted state (no refit: fresh lacks FAST_LRM kwargs, so a
        # refit would have produced a different decomposition).
        assert np.array_equal(
            reloaded.mechanism.decomposition.b, plan.mechanism.decomposition.b
        )
        assert np.allclose(
            first.execute(plan, 0.5).answers, fresh.execute(reloaded, 0.5).answers
        )

    def test_shared_cache_instance(self):
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        engine_a = _engine(plan_cache=cache)
        engine_b = _engine(plan_cache=cache)
        plan = engine_a.plan(wl, mechanism="LM")
        assert engine_b.plan(wl, mechanism="LM") is plan

    def test_registry_instance_with_foreign_attrs_degrades_to_memory(self, tmp_path):
        # Extra public attributes the constructor does not accept must not
        # crash planning with a disk cache — the refit gate rejects them
        # (TypeError from the constructor) and the plan stays memory-only.
        cache = PlanCache(directory=tmp_path / "plans")
        engine = _engine(plan_cache=cache)
        annotated = NoiseOnDataMechanism()
        annotated.note = "analyst"
        plan = engine.plan(wrange(6, 64, seed=0), mechanism=annotated)
        assert plan.mechanism_label == "LM"
        assert not list((tmp_path / "plans").glob("*.plan.npz"))

    def test_unserializable_plan_degrades_to_memory(self, tmp_path):
        from repro.mechanisms.base import Mechanism

        class OffRegistry(Mechanism):
            name = "OFFREG"

            def _answer(self, x, epsilon, rng):
                return self.workload.answer(x)

        cache = PlanCache(directory=tmp_path / "plans")
        engine = _engine(plan_cache=cache)
        wl = wrange(6, 64, seed=0)
        custom = OffRegistry()
        plan = engine.plan(wl, mechanism=custom)
        assert engine.plan(wl, mechanism=custom) is plan
        assert not list((tmp_path / "plans").glob("*.npz"))

    def test_contains_len_clear(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "plans")
        engine = _engine(plan_cache=cache)
        wl = wrange(6, 64, seed=0)
        engine.plan(wl, mechanism="LM")
        key = plan_key(wl, "LM")
        assert key in cache
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert key in cache  # still on disk
        cache.clear(disk=True)
        assert key not in cache

    def test_put_rejects_non_plan(self):
        with pytest.raises(ValidationError):
            PlanCache().put("key", object())

    def test_array_attr_instance_cache_reuse(self):
        # Constructor state with ndarray values (a strategy matrix) must
        # compare by content, not identity — else every plan() call
        # discards a valid cache hit and refits a one-off plan.
        from repro.mechanisms.strategy import StrategyMechanism

        engine = _engine()
        wl = wrange(6, 64, seed=0)
        first = engine.plan(wl, mechanism=StrategyMechanism(np.eye(64)))
        second = engine.plan(wl, mechanism=StrategyMechanism(np.eye(64)))
        assert first is second
        different = engine.plan(wl, mechanism=StrategyMechanism(2.0 * np.eye(64)))
        assert different is not first

    def test_stale_format_version_treated_as_miss(self, tmp_path):
        import json

        cache = PlanCache(directory=tmp_path / "plans")
        engine = _engine(plan_cache=cache)
        wl = wrange(6, 64, seed=0)
        plan = engine.plan(wl, mechanism="LM")
        path = cache.path_for(plan.plan_key)
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        metadata = json.loads(bytes(payload["metadata"].tobytes()).decode())
        metadata["plan_format_version"] = 99
        payload["metadata"] = np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8)
        np.savez_compressed(path, **payload)
        fresh = PlanCache(directory=tmp_path / "plans")
        assert fresh.get(plan.plan_key) is None  # stale != broken
        # A fresh engine simply replans and overwrites the stale archive.
        replanned = _engine(plan_cache=fresh).plan(wl, mechanism="LM")
        assert replanned.mechanism_label == "LM"

    def test_corrupt_archive_treated_as_miss(self, tmp_path):
        # A truncated/garbage archive (crashed writer) must not poison the
        # cache: plan() replans and overwrites instead of crashing forever.
        cache = PlanCache(directory=tmp_path / "plans")
        wl = wrange(6, 64, seed=0)
        key = plan_key(wl, "LM")
        (tmp_path / "plans").mkdir(parents=True)
        cache.path_for(key).write_bytes(b"not a zip archive")
        engine = _engine(plan_cache=cache)
        plan = engine.plan(wl, mechanism="LM")
        assert plan.mechanism_label == "LM"
        # The bad file was replaced by a loadable archive.
        fresh = PlanCache(directory=tmp_path / "plans")
        assert fresh.get(key) is not None

    def test_corrupt_archive_is_quarantined_with_warning(self, tmp_path, caplog):
        # The unreadable bytes are preserved for post-mortem (renamed to
        # *.corrupt) and a warning names the archive — corruption must be
        # visible, not silently papered over by the refit.
        import logging

        cache = PlanCache(directory=tmp_path / "plans")
        wl = wrange(6, 64, seed=0)
        key = plan_key(wl, "LM")
        (tmp_path / "plans").mkdir(parents=True)
        path = cache.path_for(key)
        path.write_bytes(b"not a zip archive")
        with caplog.at_level(logging.WARNING, logger="repro.engine.plan_cache"):
            assert cache.get(key) is None
        assert "unreadable archive" in caplog.text
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_bytes() == b"not a zip archive"
        # The refit lands at the original path; the quarantine file stays
        # until clear(disk=True).
        _engine(plan_cache=cache).plan(wl, mechanism="LM")
        assert PlanCache(directory=tmp_path / "plans").get(key) is not None
        assert quarantined.exists()
        cache.clear(disk=True)
        assert not quarantined.exists()

    def test_rename_failure_degrades_to_memory(self, tmp_path, monkeypatch):
        # os.replace can fail after a successful staging write (e.g. a
        # concurrent reader holding the target open on Windows); put() must
        # keep the memory entry instead of failing the planning call.
        import repro.engine.plan_cache as plan_cache_module

        cache = PlanCache(directory=tmp_path / "plans")
        engine = _engine(plan_cache=cache)

        def refuse(src, dst):
            raise PermissionError("target held open by a concurrent reader")

        monkeypatch.setattr(plan_cache_module.os, "replace", refuse)
        wl = wrange(6, 64, seed=0)
        plan = engine.plan(wl, mechanism="LM")
        assert engine.plan(wl, mechanism="LM") is plan
        assert not list((tmp_path / "plans").glob("*.plan.npz"))
        assert not list((tmp_path / "plans").glob("*.tmp.npz"))

    def test_no_stale_staging_files(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "plans")
        _engine(plan_cache=cache).plan(wrange(6, 64, seed=0), mechanism="LM")
        assert not list((tmp_path / "plans").glob("*.tmp.npz"))


class TestPlanCacheLRU:
    def _plans(self, engine, count):
        workloads = [wrange(3 + index, 64, seed=index) for index in range(count)]
        return workloads, [engine.plan(wl, mechanism="LM") for wl in workloads]

    def test_evicts_oldest_past_cap(self):
        cache = PlanCache(max_entries=2)
        engine = _engine(plan_cache=cache)
        workloads, plans = self._plans(engine, 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        first_key = plan_key(workloads[0], "LM")
        assert first_key not in cache.keys()
        # The evicted plan refits on next use (memory-only cache).
        assert engine.plan(workloads[0], mechanism="LM") is not plans[0]

    def test_get_refreshes_recency(self):
        cache = PlanCache(max_entries=2)
        engine = _engine(plan_cache=cache)
        workloads, plans = self._plans(engine, 2)
        assert engine.plan(workloads[0], mechanism="LM") is plans[0]  # touch oldest
        engine.plan(wrange(9, 64, seed=9), mechanism="LM")  # forces one eviction
        # The recently-touched entry survived; the untouched one was evicted.
        assert plan_key(workloads[0], "LM") in cache.keys()
        assert plan_key(workloads[1], "LM") not in cache.keys()

    def test_eviction_leaves_disk_archives_intact(self, tmp_path):
        cache = PlanCache(directory=tmp_path / "plans", max_entries=1)
        engine = _engine(plan_cache=cache)
        workloads, plans = self._plans(engine, 2)
        assert len(cache) == 1
        assert len(list((tmp_path / "plans").glob("*.plan.npz"))) == 2
        # The evicted entry reloads from its archive — no refit.
        disk_hits_before = cache.disk_hits
        reloaded = engine.plan(workloads[0], mechanism="LM")
        assert cache.disk_hits == disk_hits_before + 1
        assert reloaded.workload_key == plans[0].workload_key

    def test_unbounded_by_default(self):
        cache = PlanCache()
        engine = _engine(plan_cache=cache)
        self._plans(engine, 4)
        assert len(cache) == 4
        assert cache.evictions == 0

    def test_max_entries_validated(self):
        with pytest.raises(ValidationError):
            PlanCache(max_entries=0)


class _FakeClock:
    """Stand-in for the ``time`` module inside ``plan_cache``: only
    ``time()`` is consulted by the staleness gates."""

    def __init__(self, now):
        self.now = float(now)

    def time(self):
        return self.now


class TestPlanCacheStaleness:
    """TTL + solver-version provenance gates (disk-tier freshness)."""

    def _plan(self):
        from repro.engine.plan import build_plan

        return build_plan(wrange(4, 16, seed=0), epsilon_hint=0.1, mechanism="LM")

    def _patch_clock(self, monkeypatch, start=None):
        import time as real_time

        import repro.engine.plan_cache as plan_cache_module

        clock = _FakeClock(real_time.time() if start is None else start)
        monkeypatch.setattr(plan_cache_module, "time", clock)
        return clock

    def test_ttl_expires_memory_entry(self, monkeypatch):
        clock = self._patch_clock(monkeypatch)
        cache = PlanCache(ttl_seconds=60)
        plan = self._plan()
        cache.put(plan.plan_key, plan)
        assert cache.get(plan.plan_key) is plan
        clock.now += 120
        assert cache.get(plan.plan_key) is None
        assert cache.expirations == 1
        assert len(cache) == 0  # the stale memory entry was dropped

    def test_ttl_expires_disk_archive(self, tmp_path, monkeypatch):
        plan = self._plan()
        writer = PlanCache(directory=tmp_path / "plans")
        writer.put(plan.plan_key, plan)

        clock = self._patch_clock(monkeypatch)
        reader = PlanCache(directory=tmp_path / "plans", ttl_seconds=60)
        clock.now += 120
        assert reader.get(plan.plan_key) is None
        assert reader.expirations == 1
        # The refit's put() overwrites the stale archive, after which the
        # entry is fresh again.
        reader.put(plan.plan_key, plan)
        assert reader.get(plan.plan_key) is plan

    def test_promoted_disk_hit_inherits_archive_stamp(self, tmp_path, monkeypatch):
        # A disk hit promoted into memory must expire on the *archive's*
        # schedule, not live a fresh TTL from the promotion instant.
        plan = self._plan()
        writer = PlanCache(directory=tmp_path / "plans")
        writer.put(plan.plan_key, plan)

        clock = self._patch_clock(monkeypatch)
        reader = PlanCache(directory=tmp_path / "plans", ttl_seconds=100)
        clock.now += 60
        assert reader.get(plan.plan_key) is not None  # promoted, 60s old
        clock.now += 60  # now 120s past save: expired even though promoted at 60s
        assert reader.get(plan.plan_key) is None
        assert reader.expirations >= 1

    def test_old_solver_version_misses(self, tmp_path):
        from repro.core.alm import SOLVER_VERSION

        plan = self._plan()
        writer = PlanCache(directory=tmp_path / "plans")
        writer.put(plan.plan_key, plan)

        strict = PlanCache(
            directory=tmp_path / "plans", min_solver_version=SOLVER_VERSION + 1
        )
        assert strict.get(plan.plan_key) is None
        assert strict.expirations == 1 and strict.misses == 1

        accepting = PlanCache(
            directory=tmp_path / "plans", min_solver_version=SOLVER_VERSION
        )
        assert accepting.get(plan.plan_key) is not None
        assert accepting.disk_hits == 1

    def test_pre_provenance_archive_reads_as_version_zero(self, tmp_path):
        import numpy as np_module

        from repro.io.serialization import plan_archive_info, save_plan

        plan = self._plan()
        path = tmp_path / "old.plan.npz"
        save_plan(plan, path)
        # Strip the provenance fields the way an old-library archive lacks
        # them entirely.
        with np_module.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        metadata = json.loads(bytes(payload["metadata"].tobytes()).decode("utf-8"))
        metadata.pop("solver_version", None)
        metadata.pop("saved_at", None)
        payload["metadata"] = np_module.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np_module.uint8
        )
        np_module.savez(path, **payload)
        info = plan_archive_info(path)
        assert info["solver_version"] == 0
        assert info["saved_at"] is not None  # falls back to the file mtime

    def test_ttl_validated(self):
        with pytest.raises(ValidationError):
            PlanCache(ttl_seconds=0)
        with pytest.raises(ValidationError):
            PlanCache(ttl_seconds=-5)


class TestCacheHitPrivacyGuard:
    """A shared PlanCache must never serve a plan calibrated for another
    engine's privacy configuration (regression for the label/auto cache-hit
    paths, which used to skip the configuration check instance specs get)."""

    def test_label_hit_with_other_unit_sensitivity_replans(self):
        # An engine declaring unit_sensitivity=2.0 sharing a cache with a
        # default-configured engine must not release the cached
        # sensitivity-1.0 calibration — that would be under-noised for the
        # guarantee it claims, with no error raised anywhere.
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        default_engine = _engine(plan_cache=cache)
        sensitive_engine = _engine(
            plan_cache=cache,
            mechanism_kwargs={**FAST_LRM, "LM": {"unit_sensitivity": 2.0}},
        )
        baseline = default_engine.plan(wl, mechanism="LM")
        assert baseline.mechanism.unit_sensitivity == 1.0
        replanned = sensitive_engine.plan(wl, mechanism="LM")
        assert replanned is not baseline
        assert replanned.mechanism.unit_sensitivity == 2.0
        # First plan keeps the key; the default engine still gets its own
        # calibration, and each engine keeps getting the right one.
        assert default_engine.plan(wl, mechanism="LM") is baseline
        assert sensitive_engine.plan(wl, mechanism="LM").mechanism.unit_sensitivity == 2.0

    def test_label_hit_guard_is_order_independent(self):
        # Reversed planning order: the default engine must not be served
        # the 2.0-calibrated plan either (over-noised is still the wrong
        # configuration).
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        sensitive_engine = _engine(
            plan_cache=cache,
            mechanism_kwargs={**FAST_LRM, "LM": {"unit_sensitivity": 2.0}},
        )
        default_engine = _engine(plan_cache=cache)
        assert sensitive_engine.plan(wl, mechanism="LM").mechanism.unit_sensitivity == 2.0
        assert default_engine.plan(wl, mechanism="LM").mechanism.unit_sensitivity == 1.0

    def test_auto_hit_with_other_unit_sensitivity_replans(self):
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        first = _engine(plan_cache=cache, candidates=("LM",)).plan(wl)
        replanned = _engine(
            plan_cache=cache,
            candidates=("LM",),
            mechanism_kwargs={"LM": {"unit_sensitivity": 2.0}},
        ).plan(wl)
        assert replanned is not first
        assert replanned.mechanism.unit_sensitivity == 2.0

    def test_disk_hit_with_other_delta_replans(self, tmp_path):
        # The engine's delta becomes the Gaussian mechanisms' default
        # failure probability; a restarted engine with a different delta
        # must refit rather than reuse the other calibration from disk.
        data = np.arange(64.0)
        wl = wrange(6, 64, seed=0)
        writer = PrivateQueryEngine(
            data, total_budget=1.0, delta=1e-5, seed=0,
            plan_cache=tmp_path / "plans",
        )
        assert writer.plan(wl, mechanism="GLM").mechanism.delta == 1e-5
        reader = PrivateQueryEngine(
            data, total_budget=1.0, delta=1e-7, seed=0,
            plan_cache=tmp_path / "plans",
        )
        assert reader.plan(wl, mechanism="GLM").mechanism.delta == 1e-7

    def test_solver_tuning_difference_still_shares_the_fit(self, tmp_path):
        # The guard compares privacy-critical state only: LRM solver knobs
        # change the fit, not the calibration (noise is scaled to the
        # decomposition actually held), so the expensive fit stays shared.
        data = np.arange(64.0)
        wl = wrelated(8, 64, s=2, seed=1)
        tuned = PrivateQueryEngine(
            data, total_budget=1.0, mechanism_kwargs=FAST_LRM, seed=3,
            plan_cache=tmp_path / "plans",
        )
        plan = tuned.plan(wl, mechanism="LRM")
        untuned = PrivateQueryEngine(
            data, total_budget=1.0, seed=3, plan_cache=tmp_path / "plans",
        )
        reloaded = untuned.plan(wl, mechanism="LRM")
        assert untuned.plan_cache.disk_hits == 1
        assert np.array_equal(
            reloaded.mechanism.decomposition.b, plan.mechanism.decomposition.b
        )

    def test_mismatch_one_off_plan_is_memoized_per_engine(self):
        # A mismatched engine must not refit on every plan() call: the
        # one-off plan is kept engine-local (the shared entry still owns
        # the key) and re-served while the configuration still matches.
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        default_engine = _engine(plan_cache=cache)
        baseline = default_engine.plan(wl, mechanism="LM")
        tuned = _engine(
            plan_cache=cache,
            mechanism_kwargs={**FAST_LRM, "LM": {"unit_sensitivity": 2.0}},
        )
        one_off = tuned.plan(wl, mechanism="LM")
        assert tuned.plan(wl, mechanism="LM") is one_off
        assert default_engine.plan(wl, mechanism="LM") is baseline

    def test_auto_pool_instance_candidate_keeps_cache_reuse(self):
        # For an auto-pool *instance* candidate the engine's reference
        # configuration is the instance itself, so the engine keeps
        # hitting the plan it built from it.
        engine = _engine(candidates=(NoiseOnDataMechanism(unit_sensitivity=2.0),))
        wl = wrange(6, 64, seed=0)
        first = engine.plan(wl)
        assert first.mechanism.unit_sensitivity == 2.0
        assert engine.plan(wl) is first

    def test_mixed_auto_pool_is_compatible_with_its_own_plans(self):
        # A pool naming both the registry label and a same-named instance
        # with a different privacy configuration could crown either one;
        # the engine must stay compatible with whichever won instead of
        # rejecting its own plan and refitting the pool on every call.
        engine = _engine(
            candidates=("LM", NoiseOnDataMechanism(unit_sensitivity=2.0)),
        )
        wl = wrange(6, 64, seed=0)
        first = engine.plan(wl)
        assert engine.plan(wl) is first

    def test_memoized_one_off_survives_shared_cache_eviction(self):
        # If the shared entry that forced the one-off is later evicted,
        # the engine promotes its memoized fit to the free key instead of
        # refitting from scratch.
        cache = PlanCache()
        wl = wrange(6, 64, seed=0)
        _engine(plan_cache=cache).plan(wl, mechanism="LM")
        tuned = _engine(
            plan_cache=cache,
            mechanism_kwargs={**FAST_LRM, "LM": {"unit_sensitivity": 2.0}},
        )
        one_off = tuned.plan(wl, mechanism="LM")
        cache.clear()
        assert tuned.plan(wl, mechanism="LM") is one_off
        assert cache.get(plan_key(wl, "LM")) is one_off

    def test_alternating_mismatched_instances_each_memoized(self):
        # Two instance configurations that both mismatch the shared entry
        # (same cache key) must each keep their own one-off plan — the fit
        # is paid once per configuration, not once per call.
        engine = _engine()
        wl = wrange(6, 64, seed=0)
        engine.plan(wl, mechanism=NoiseOnDataMechanism())  # owns the key
        two = engine.plan(wl, mechanism=NoiseOnDataMechanism(unit_sensitivity=2.0))
        three = engine.plan(wl, mechanism=NoiseOnDataMechanism(unit_sensitivity=3.0))
        assert engine.plan(wl, mechanism=NoiseOnDataMechanism(unit_sensitivity=2.0)) is two
        assert engine.plan(wl, mechanism=NoiseOnDataMechanism(unit_sensitivity=3.0)) is three

    def test_epsilon_hint_validated_on_cache_hit(self):
        # Input validation must not depend on cache state: a hit with a
        # bogus epsilon_hint raises exactly like a miss would.
        engine = _engine()
        wl = wrange(6, 64, seed=0)
        engine.plan(wl, mechanism="LM")
        with pytest.raises(ValidationError):
            engine.plan(wl, mechanism="LM", epsilon_hint=-1.0)


class TestReleaseDataclass:
    def test_optional_fields_default(self):
        release_cls_fields = {f.name for f in __import__("dataclasses").fields(
            __import__("repro.engine.query_engine", fromlist=["Release"]).Release
        )}
        assert {"answers", "mechanism", "epsilon", "delta", "expected_error",
                "workload_key", "metadata"} <= release_cls_fields

    def test_expected_error_none_when_no_closed_form(self):
        # Empirical-only mechanisms record None, not a bogus float.
        from repro.mechanisms.base import Mechanism

        class EmpiricalOnly(Mechanism):
            name = "EMP"

            def _answer(self, x, epsilon, rng):
                return self.workload.answer(x)

        engine = _engine()
        release = engine.execute(
            engine.plan(wrange(6, 64, seed=0), mechanism=EmpiricalOnly()), 0.2
        )
        assert release.expected_error is None

    def test_expected_error_float_with_closed_form(self):
        engine = _engine()
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        release = engine.execute(plan, 0.2)
        assert isinstance(release.expected_error, float)
