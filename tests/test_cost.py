"""Typed NoiseCost end-to-end: value object, accountants, ledger, engine.

The migration contract under test: scalar ``(epsilon, delta)`` behaviour is
bit-identical before and after the typed-cost refactor — same accountant
floats, same RDP curves, same on-disk replays — while typed costs unlock
what scalars could not describe (subsampling amplification, the discrete
Gaussian, self-describing audit records).
"""

import io
import logging
import math
import os
import shutil

import numpy as np
import pytest

import repro.privacy.ledger as ledger_mod
from repro.exceptions import (
    LedgerError,
    PrivacyBudgetError,
    ReproError,
    ValidationError,
)
from repro.privacy.accountant import make_accountant
from repro.privacy.cost import (
    COST_FAMILIES,
    NoiseCost,
    amplified_pair,
    as_spend_cost,
    charged_pair,
    cost_from_record,
    cost_record,
)
from repro.privacy.ledger import open_ledger
from repro.privacy.noise import (
    discrete_gaussian_noise,
    discrete_gaussian_noise_batch,
    gaussian_sigma,
)
from repro.privacy.rdp import (
    RDPAccountant,
    gaussian_rdp_curve,
    laplace_rdp_curve,
    noise_cost_rdp_curve,
    release_rdp_curve,
    releases_per_budget,
    subsampled_gaussian_rdp_curve,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "ledgers")


def gaussian_cost(epsilon=0.3, delta=1e-7, **kwargs):
    return NoiseCost(family="gaussian", epsilon=epsilon, delta=delta, **kwargs)


# ---------------------------------------------------------------------- #
# NoiseCost value object
# ---------------------------------------------------------------------- #
class TestNoiseCost:
    def test_families_and_validation(self):
        assert "laplace" in COST_FAMILIES
        with pytest.raises(ValidationError):
            NoiseCost(family="cauchy", epsilon=1.0)
        with pytest.raises(ValidationError):
            NoiseCost(family="laplace", epsilon=0.0)
        with pytest.raises(ValidationError):
            NoiseCost(family="laplace", epsilon=1.0, delta=1e-7)
        with pytest.raises(ValidationError):
            NoiseCost(family="gaussian", epsilon=1.0, delta=0.0)
        with pytest.raises(ValidationError):
            NoiseCost(family="gaussian", epsilon=1.0, delta=1.0)
        with pytest.raises(ValidationError):
            NoiseCost(family="gaussian", epsilon=1.0, delta=1e-7, sample_rate=0.5)
        with pytest.raises(ValidationError):
            NoiseCost(
                family="subsampled_gaussian", epsilon=1.0, delta=1e-7, sample_rate=0.0
            )
        with pytest.raises(ValidationError):
            NoiseCost(family="laplace", epsilon=1.0, sensitivity=-1.0)

    def test_not_iterable(self):
        # A typed cost must never silently downcast to an untyped pair.
        cost = gaussian_cost()
        with pytest.raises(TypeError):
            tuple(cost)

    def test_hashable_and_equal(self):
        assert gaussian_cost() == gaussian_cost()
        assert hash(gaussian_cost()) == hash(gaussian_cost())

    def test_charged_pair_identity_at_full_sample(self):
        cost = gaussian_cost(0.37, 1e-7)
        assert cost.charged_pair() == (0.37, 1e-7)
        sub_full = NoiseCost(
            family="subsampled_gaussian", epsilon=0.37, delta=1e-7, sample_rate=1.0
        )
        assert sub_full.charged_pair() == (0.37, 1e-7)

    def test_charged_pair_amplified(self):
        cost = NoiseCost(
            family="subsampled_gaussian", epsilon=0.5, delta=1e-6, sample_rate=0.1
        )
        eps, delta = cost.charged_pair()
        assert eps == math.log1p(0.1 * math.expm1(0.5))
        assert delta == 0.1 * 1e-6
        assert eps < 0.5
        assert amplified_pair(0.5, 1e-6, 0.1) == (eps, delta)

    def test_record_round_trip(self):
        cost = NoiseCost(
            family="subsampled_gaussian", epsilon=0.5, delta=1e-6,
            sigma_or_scale=3.5, sensitivity=2.0, sample_rate=0.25,
        )
        record = cost.to_record()
        assert record["charged"] == list(cost.charged_pair())
        assert NoiseCost.from_record(record) == cost
        # Unknown keys from newer writers are ignored.
        record["future_field"] = "x"
        assert NoiseCost.from_record(record) == cost

    def test_cost_record_shim(self):
        assert cost_record((0.3, 0.0)) == [0.3, 0.0]
        assert cost_from_record([0.3, 0.0]) == (0.3, 0.0)
        typed = gaussian_cost()
        assert cost_from_record(cost_record(typed)) == typed
        with pytest.raises(ValidationError):
            cost_from_record("bogus")

    def test_as_spend_cost(self):
        cost = gaussian_cost()
        assert as_spend_cost(cost) is cost
        with pytest.raises(ValidationError):
            as_spend_cost(cost, 1e-7)  # typed cost already carries its delta
        assert as_spend_cost((0.3, 1e-7)) == (0.3, 1e-7)
        assert as_spend_cost(0.3, 1e-7) == (0.3, 1e-7)
        with pytest.raises(ValidationError):
            as_spend_cost("junk")
        assert charged_pair((0.3, 1e-7)) == (0.3, 1e-7)


# ---------------------------------------------------------------------- #
# Accountants: unified delta rule, bit-identity with scalars
# ---------------------------------------------------------------------- #
class TestAccountants:
    @pytest.mark.parametrize("model", ["pure", "basic", "rdp"])
    def test_typed_equals_scalar_bit_identical(self, model):
        delta = 0.0 if model == "pure" else 1e-5
        scalar = make_accountant(4.0, delta, model=model)
        typed = make_accountant(4.0, delta, model=model)
        scalar.spend(0.3, 0.0)
        typed.spend(NoiseCost(family="laplace", epsilon=0.3))
        if model != "pure":
            scalar.spend(0.2, 1e-7)
            typed.spend(gaussian_cost(0.2, 1e-7))
        assert typed.spent_epsilon == scalar.spent_epsilon
        assert typed.spent_delta == scalar.spent_delta
        assert typed.remaining_epsilon == scalar.remaining_epsilon

    def test_pure_rejects_gaussian_cost_like_scalar_delta(self):
        pure = make_accountant(1.0, model="pure")
        with pytest.raises(PrivacyBudgetError):
            pure.spend(0.1, 1e-7)
        with pytest.raises(PrivacyBudgetError):
            pure.spend(gaussian_cost(0.1, 1e-7))
        assert not pure.can_spend(gaussian_cost(0.1, 1e-7))
        assert pure.spent_epsilon == 0.0

    def test_basic_charges_amplified_pair(self):
        # Satellite: one delta-handling rule — additive accountants charge
        # the amplified per-release guarantee of a subsampled cost.
        basic = make_accountant(4.0, 1e-5, model="basic")
        cost = NoiseCost(
            family="subsampled_gaussian", epsilon=0.5, delta=1e-6, sample_rate=0.1
        )
        basic.spend(cost)
        eps, delta = cost.charged_pair()
        assert basic.spent_epsilon == eps
        assert basic.spent_delta == delta

    def test_boundary_q1_matches_unsampled_everywhere(self):
        # The q -> 1 boundary: a subsampled cost at q=1 must be
        # indistinguishable from its unsampled twin in every accountant.
        plain = gaussian_cost(0.4, 1e-6)
        boundary = NoiseCost(
            family="subsampled_gaussian", epsilon=0.4, delta=1e-6, sample_rate=1.0
        )
        assert boundary.charged_pair() == plain.charged_pair()
        assert np.array_equal(
            noise_cost_rdp_curve(boundary), noise_cost_rdp_curve(plain)
        )
        for model in ("basic", "rdp"):
            a = make_accountant(4.0, 1e-5, model=model)
            b = make_accountant(4.0, 1e-5, model=model)
            a.spend(plain)
            b.spend(boundary)
            assert a.spent_epsilon == b.spent_epsilon
            assert a.spent_delta == b.spent_delta

    def test_spend_many_mixes_typed_and_scalar(self):
        acc = make_accountant(4.0, 1e-5, model="basic")
        costs = [(0.1, 0.0), gaussian_cost(0.2, 1e-7), (0.1, 1e-8)]
        validated = acc.spend_many(costs)
        assert validated[1] == costs[1]
        assert acc.spent_epsilon == pytest.approx(0.4)
        assert acc.spent_delta == 1e-7 + 1e-8

    def test_spend_returns_typed_cost(self):
        acc = make_accountant(4.0, 1e-5, model="basic")
        cost = gaussian_cost(0.2, 1e-7)
        assert acc.spend(cost) is cost


# ---------------------------------------------------------------------- #
# RDP curves: legacy bit-identity plus the subsampled/discrete families
# ---------------------------------------------------------------------- #
class TestRDPCurves:
    def test_typed_curves_bit_identical_to_legacy(self):
        lap = NoiseCost(family="laplace", epsilon=0.3)
        assert np.array_equal(
            noise_cost_rdp_curve(lap), release_rdp_curve(0.3, 0.0)
        )
        assert np.array_equal(
            noise_cost_rdp_curve(lap), laplace_rdp_curve(1.0 / 0.3)
        )
        gau = gaussian_cost(0.3, 1e-7)
        assert np.array_equal(
            noise_cost_rdp_curve(gau), release_rdp_curve(0.3, 1e-7)
        )

    def test_discrete_gaussian_shares_gaussian_curve(self):
        # CKS 2020: the discrete Gaussian at sigma satisfies the same RDP
        # guarantee as the continuous Gaussian at sigma.
        disc = NoiseCost(family="discrete_gaussian", epsilon=0.3, delta=1e-7)
        assert np.array_equal(
            noise_cost_rdp_curve(disc), noise_cost_rdp_curve(gaussian_cost(0.3, 1e-7))
        )

    def test_subsampled_curve_q1_identity(self):
        sigma = 4.0
        assert np.array_equal(
            subsampled_gaussian_rdp_curve(sigma, 1.0), gaussian_rdp_curve(sigma)
        )

    def test_subsampled_curve_strictly_below_unsampled(self):
        sigma = 4.0
        sampled = subsampled_gaussian_rdp_curve(sigma, 0.1)
        unsampled = gaussian_rdp_curve(sigma)
        assert np.all(sampled <= unsampled)
        assert np.all(sampled[:-1] < unsampled[:-1])
        assert np.all(sampled >= 0.0)

    def test_subsampled_curve_monotone_in_q(self):
        sigma = 3.0
        low = subsampled_gaussian_rdp_curve(sigma, 0.05)
        high = subsampled_gaussian_rdp_curve(sigma, 0.5)
        assert np.all(low <= high)

    def test_subsampled_curve_rejects_bad_q(self):
        with pytest.raises(ReproError):
            subsampled_gaussian_rdp_curve(2.0, 0.0)
        with pytest.raises(ReproError):
            subsampled_gaussian_rdp_curve(2.0, 1.5)

    def test_releases_per_budget_amplification(self):
        base = releases_per_budget(0.5, 1e-7, 4.0, 1e-5, model="rdp")
        amplified = releases_per_budget(
            0.5, 1e-7, 4.0, 1e-5, model="rdp", sample_rate=0.1
        )
        assert amplified > base
        # Additive models charge the amplified pair.
        pure_amp = releases_per_budget(0.5, 0.0, 4.0, 0.0, model="pure",
                                       sample_rate=1.0)
        assert pure_amp == releases_per_budget(0.5, 0.0, 4.0, 0.0, model="pure")
        basic_amp = releases_per_budget(0.5, 1e-7, 4.0, 1e-5, model="basic",
                                        sample_rate=0.1)
        eps_amp, _ = amplified_pair(0.5, 1e-7, 0.1)
        assert basic_amp == releases_per_budget(eps_amp, 1e-8, 4.0, 1e-5,
                                                model="basic")

    def test_releases_per_budget_subsampled_needs_delta(self):
        with pytest.raises(PrivacyBudgetError):
            releases_per_budget(0.5, 0.0, 4.0, 1e-5, model="rdp", sample_rate=0.1)

    def test_rdp_accountant_subsampled_strictly_cheaper(self):
        plain = gaussian_cost(0.5, 1e-7)
        sub = NoiseCost(
            family="subsampled_gaussian", epsilon=0.5, delta=1e-7, sample_rate=0.1
        )
        a = RDPAccountant(4.0, 1e-5)
        b = RDPAccountant(4.0, 1e-5)
        a.spend(plain)
        b.spend(sub)
        assert b.spent_epsilon < a.spent_epsilon


# ---------------------------------------------------------------------- #
# Discrete Gaussian sampler + mechanism
# ---------------------------------------------------------------------- #
class TestDiscreteGaussian:
    def test_integral_and_deterministic(self):
        rng = np.random.default_rng(0)
        draw = discrete_gaussian_noise(1000, 1.0, 0.5, 1e-6, rng)
        assert draw.dtype == np.int64
        again = discrete_gaussian_noise(1000, 1.0, 0.5, 1e-6, np.random.default_rng(0))
        assert np.array_equal(draw, again)

    def test_moments_match_calibration(self):
        sigma = gaussian_sigma(1.0, 0.5, 1e-6)
        draw = discrete_gaussian_noise(20000, 1.0, 0.5, 1e-6, np.random.default_rng(1))
        assert abs(float(np.mean(draw))) < 0.2
        assert float(np.std(draw)) == pytest.approx(sigma, rel=0.05)

    def test_batch_rows_match_shape(self):
        rows = discrete_gaussian_noise_batch(
            16, 1.0, [0.5, 1.0, 2.0], 1e-6, np.random.default_rng(2)
        )
        assert rows.shape == (3, 16)
        assert rows.dtype == np.int64

    def test_dgnor_mechanism_releases_integers(self):
        from repro.mechanisms import make_mechanism

        mech = make_mechanism("DGNOR", delta=1e-6).fit(np.eye(8))
        x = np.arange(8.0)
        answers = mech.answer(x, 1.0, rng=0)
        assert np.array_equal(answers, np.rint(answers))
        batch = mech.answer_many(x, [0.5, 0.5], rng=1)
        assert batch.shape == (2, 8)
        assert np.array_equal(batch, np.rint(batch))
        cost = mech.release_cost(0.5)
        assert cost.family == "discrete_gaussian"
        assert cost.delta == 1e-6


# ---------------------------------------------------------------------- #
# SubsampledMechanism
# ---------------------------------------------------------------------- #
class TestSubsampledMechanism:
    def test_requires_gaussian_family_inner(self):
        from repro.mechanisms import SubsampledMechanism

        with pytest.raises(ValidationError):
            SubsampledMechanism(inner="LM", sample_rate=0.5)

    def test_release_cost_carries_sample_rate(self):
        from repro.mechanisms import make_mechanism

        mech = make_mechanism("SUB", inner="GNOR", sample_rate=0.2, delta=1e-6)
        mech.fit(np.eye(8))
        cost = mech.release_cost(0.5)
        assert cost.family == "subsampled_gaussian"
        assert cost.sample_rate == 0.2
        assert cost.epsilon == 0.5 and cost.delta == 1e-6
        eps, delta = cost.charged_pair()
        assert eps < 0.5 and delta == 0.2 * 1e-6

    def test_answer_unbiased_shape_and_validation(self):
        from repro.mechanisms import make_mechanism

        mech = make_mechanism("SUB", inner="GNOR", sample_rate=0.5, delta=1e-6)
        mech.fit(np.eye(16))
        counts = np.full(16, 40.0)
        answers = np.mean(
            [mech.answer(counts, 5.0, rng=seed) for seed in range(60)], axis=0
        )
        assert np.allclose(answers, counts, atol=6.0)
        with pytest.raises(ValidationError):
            mech.answer(np.full(16, 0.5), 1.0, rng=0)  # fractional counts
        with pytest.raises(ValidationError):
            mech.answer(np.full(16, -1.0), 1.0, rng=0)  # negative counts

    def test_engine_admits_more_subsampled_releases(self):
        # Acceptance: in an RDP-backed engine the subsampled twin is
        # admitted strictly cheaper, and its audit record carries the
        # amplified charged pair.
        from repro.engine import PrivateQueryEngine

        def spend_once(label, kwargs):
            engine = PrivateQueryEngine(
                np.arange(16.0), total_budget=2.0, delta=1e-5, seed=0,
                accountant="rdp",
            )
            plan = engine.plan(np.eye(16), mechanism=label)
            release = engine.execute(plan, 0.5)
            return engine, release

        engine_plain, release_plain = spend_once("GNOR", {})
        engine_sub, release_sub = spend_once("SUB", {})
        assert engine_sub.spent_budget < engine_plain.spent_budget
        cost_meta = release_sub.metadata["cost"]
        assert cost_meta["family"] == "subsampled_gaussian"
        assert cost_meta["sample_rate"] < 1.0
        assert cost_meta["charged"][0] < cost_meta["epsilon"]
        assert release_plain.metadata["cost"]["family"] == "gaussian"

    def test_spec_round_trip_through_plan_cache(self):
        from repro.engine.plan import build_plan
        from repro.engine.plan_cache import PlanCache

        plan = build_plan(
            np.eye(8), mechanism="SUB",
            mechanism_kwargs={"SUB": {"inner": "GNOR", "sample_rate": 0.25,
                                      "delta": 1e-6}},
        )
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            cache = PlanCache(directory=directory)
            cache.put(plan.plan_key, plan)
            # A fresh cache instance must reload from disk (format 4).
            fresh = PlanCache(directory=directory)
            loaded = fresh.get(plan.plan_key)
            assert loaded is not None
            assert loaded.release_cost(0.4) == plan.release_cost(0.4)
            assert loaded.mechanism.to_spec() == plan.mechanism.to_spec()

    def test_old_reader_treats_spec_archive_as_miss(self, monkeypatch, tmp_path):
        from repro.engine.plan import build_plan
        from repro.engine.plan_cache import PlanCache
        from repro.io import serialization

        plan = build_plan(
            np.eye(8), mechanism="SUB",
            mechanism_kwargs={"SUB": {"inner": "GNOR", "sample_rate": 0.25,
                                      "delta": 1e-6}},
        )
        cache = PlanCache(directory=str(tmp_path))
        cache.put(plan.plan_key, plan)
        # Simulate a pre-typed reader: it accepts only formats (2, 3), so
        # the version-4 spec archive is a graceful miss, not an error.
        monkeypatch.setattr(serialization, "_PLAN_FORMAT_VERSIONS", (2, 3))
        old_reader = PlanCache(directory=str(tmp_path))
        assert old_reader.get(plan.plan_key) is None


# ---------------------------------------------------------------------- #
# Ledger: format compatibility and fixture replay
# ---------------------------------------------------------------------- #
#: Exact totals pinned when tests/fixtures/make_pretyped_ledgers.py wrote
#: the committed format-1 fixtures; replay must reproduce them bit for bit.
FIXTURE_TOTALS = {
    "pure": (0.85, 0.0),
    "basic": (0.85, 3e-07),
    "rdp": (0.6309482043750951, 1e-05),
}
FIXTURE_BUDGETS = {"pure": (4.0, 0.0), "basic": (4.0, 1e-5), "rdp": (4.0, 1e-5)}


class TestLedgerCompatibility:
    @pytest.mark.parametrize("model", ["pure", "basic", "rdp"])
    @pytest.mark.parametrize("suffix", ["journal", "db"])
    def test_pretyped_fixture_replays_bit_identically(self, model, suffix, tmp_path):
        fixture = os.path.join(FIXTURES, f"pretyped_{model}.{suffix}")
        path = tmp_path / os.path.basename(fixture)
        shutil.copy(fixture, path)
        total_epsilon, total_delta = FIXTURE_BUDGETS[model]
        durable = open_ledger(
            str(path), make_accountant(total_epsilon, total_delta, model=model)
        )
        expected_epsilon, expected_delta = FIXTURE_TOTALS[model]
        assert durable.spent_epsilon == expected_epsilon
        assert durable.spent_delta == expected_delta
        # The stream continues with typed costs (mixed format-1/format-2
        # records in one journal) and still replays exactly.
        if model == "pure":
            durable.spend(NoiseCost(family="laplace", epsilon=0.05))
        else:
            durable.spend(gaussian_cost(0.05, 1e-8))
        continued = durable.spent_epsilon
        durable.close()
        reopened = open_ledger(
            str(path), make_accountant(total_epsilon, total_delta, model=model)
        )
        assert reopened.spent_epsilon == continued
        reopened.close()

    def test_new_ledger_journals_typed_costs(self, tmp_path):
        path = tmp_path / "typed.journal"
        durable = open_ledger(str(path), make_accountant(4.0, 1e-5, model="rdp"))
        cost = NoiseCost(
            family="subsampled_gaussian", epsilon=0.5, delta=1e-6, sample_rate=0.1
        )
        assert durable.spend(cost) == cost
        spent = durable.spent_epsilon
        durable.close()
        reopened = open_ledger(str(path), make_accountant(4.0, 1e-5, model="rdp"))
        assert reopened.spent_epsilon == spent
        summary = ledger_mod.inspect_ledger(str(path))
        assert summary["families"]["subsampled_gaussian"]["count"] == 1
        reopened.close()

    def test_old_reader_refuses_new_format(self, tmp_path, monkeypatch):
        path = tmp_path / "new.journal"
        durable = open_ledger(str(path), make_accountant(2.0, model="pure"))
        durable.spend(0.1)
        durable.close()
        # Simulate the pre-typed reader, which only accepts format 1: a
        # format-2 stream must refuse loudly, not replay half-understood.
        monkeypatch.setattr(ledger_mod, "ACCEPTED_LEDGER_FORMATS", (1,))
        with pytest.raises(LedgerError, match="format"):
            open_ledger(str(path), make_accountant(2.0, model="pure"))

    def test_unknown_future_format_refused(self, tmp_path, monkeypatch):
        monkeypatch.setattr(ledger_mod, "LEDGER_FORMAT_VERSION", 99)
        path = tmp_path / "future.journal"
        durable = open_ledger(str(path), make_accountant(2.0, model="pure"))
        durable.spend(0.1)
        durable.close()
        monkeypatch.undo()
        with pytest.raises(LedgerError, match="format"):
            open_ledger(str(path), make_accountant(2.0, model="pure"))

    def test_unknown_meta_fields_warn_but_open(self, tmp_path, monkeypatch, caplog):
        # Forward compatibility: a newer writer may add meta fields; the
        # reader warns and replays rather than refusing.
        from repro.privacy.ledger import DurableAccountant

        original = DurableAccountant._meta_payload

        def with_extra(self):
            payload = original(self)
            payload["written_by"] = "a newer release"
            return payload

        path = tmp_path / "extra.journal"
        with monkeypatch.context() as patched:
            patched.setattr(DurableAccountant, "_meta_payload", with_extra)
            durable = open_ledger(str(path), make_accountant(2.0, model="pure"))
            durable.spend(0.1)
            durable.close()
        with caplog.at_level(logging.WARNING, logger="repro.privacy.ledger"):
            reopened = open_ledger(str(path), make_accountant(2.0, model="pure"))
        assert reopened.spent_epsilon == 0.1
        assert any("written_by" in message for message in caplog.messages)
        reopened.close()

    def test_ledger_spend_keyed_with_typed_costs(self, tmp_path):
        from repro.engine import PrivateQueryEngine

        path = tmp_path / "keyed.journal"
        engine = PrivateQueryEngine(
            np.arange(8.0), total_budget=2.0, delta=1e-5, seed=0,
            accountant="rdp", ledger_path=str(path),
        )
        plan = engine.plan(np.eye(8), mechanism="SUB")
        first = engine.execute(plan, 0.4, request_key="sub-1")
        again = engine.execute(plan, 0.4, request_key="sub-1")
        assert again.metadata.get("deduplicated")
        assert np.array_equal(first.answers, again.answers)
        assert again.metadata["cost"]["family"] == "subsampled_gaussian"


# ---------------------------------------------------------------------- #
# CLI: per-family breakdown of ledger inspect
# ---------------------------------------------------------------------- #
class TestLedgerCLI:
    def test_inspect_golden_output(self, tmp_path):
        from repro import cli

        path = tmp_path / "audit.journal"
        durable = open_ledger(str(path), make_accountant(2.0, 1e-6, model="basic"))
        durable.spend(0.5)  # journals as an untyped [epsilon, delta] pair
        durable.spend(NoiseCost(family="laplace", epsilon=0.25))
        durable.spend(gaussian_cost(0.2, 1e-7))
        durable.close()

        class Args:
            action = "inspect"
            ledger = str(path)
            dry_run = False

        out = io.StringIO()
        assert cli._run_ledger(Args(), out) == 0
        text = out.getvalue()
        lines = text.splitlines()
        assert lines[0] == f"ledger {path} (journal backend)"
        expected = [
            "  model=approx-dp total_epsilon=2.0 total_delta=1e-06",
            "  records=7 committed_txns=3 costs=3 keyed_results=0",
            "  cost[gaussian]: count=1 epsilon=0.2 delta=1e-07",
            "  cost[laplace]: count=1 epsilon=0.25 delta=0.0",
            "  cost[untyped]: count=1 epsilon=0.5 delta=0.0",
            "  dangling_intents=0 rolled_back=0 resets=0 torn_tail_bytes=0",
            "  spent_epsilon=0.95 spent_delta=1e-07 remaining_epsilon=1.05",
        ]
        assert lines[1:] == expected
