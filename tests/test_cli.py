"""Unit tests for the CLI."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_target(self):
        args = build_parser().parse_args(["table1"])
        assert args.target == "table1"

    def test_figure_targets(self):
        for i in range(2, 10):
            args = build_parser().parse_args([f"figure{i}"])
            assert args.target == f"figure{i}"

    def test_invalid_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_scale_flag(self):
        args = build_parser().parse_args(["figure2", "--scale", "full"])
        assert args.scale == "full"

    def test_invalid_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--scale", "giant"])

    def test_seed_flag(self):
        assert build_parser().parse_args(["figure2", "--seed", "7"]).seed == 7


class TestMain:
    def test_table1_prints_grid(self):
        out = io.StringIO()
        assert main(["table1"], out=out) == 0
        text = out.getvalue()
        assert "Table 1" in text
        assert "8192" in text
        assert "gamma" in text

    def test_table1_lists_all_parameters(self):
        out = io.StringIO()
        main(["table1"], out=out)
        for key in ("gamma", "rank_ratio", "n", "m", "s_ratio", "epsilon"):
            assert key in out.getvalue()

    def test_chart_flag_parsed(self):
        args = build_parser().parse_args(["figure2", "--chart"])
        assert args.chart is True

    def test_decompose_end_to_end(self, tmp_path):
        import numpy as np

        from repro.io.serialization import load_decomposition
        from repro.workloads import wrelated

        workload_path = tmp_path / "w.npy"
        out_path = tmp_path / "dec.npz"
        np.save(workload_path, wrelated(6, 16, s=2, seed=0).matrix)
        out = io.StringIO()
        code = main(
            ["decompose", "--workload", str(workload_path), "--out", str(out_path)],
            out=out,
        )
        assert code == 0
        assert "sensitivity Delta(L)" in out.getvalue()
        restored = load_decomposition(out_path)
        assert restored.b.shape[0] == 6

    def test_decompose_requires_workload(self):
        out = io.StringIO()
        assert main(["decompose"], out=out) == 2


class TestPlanTarget:
    @staticmethod
    def _workload_file(tmp_path):
        import numpy as np

        from repro.workloads import wrelated

        path = tmp_path / "w.npy"
        np.save(path, wrelated(6, 16, s=2, seed=0).matrix)
        return str(path)

    def test_plan_requires_workload(self):
        out = io.StringIO()
        assert main(["plan"], out=out) == 2

    def test_plan_without_delta_stays_pure(self, tmp_path):
        out = io.StringIO()
        assert main(["plan", "--workload", self._workload_file(tmp_path)], out=out) == 0
        text = out.getvalue()
        assert "pure eps-DP" in text
        assert "GLM" not in text  # no Gaussian candidates without --delta

    def test_plan_with_positive_delta_adds_gaussian_candidates(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["plan", "--workload", self._workload_file(tmp_path), "--delta", "1e-6"],
            out=out,
        )
        assert code == 0
        assert "GLM" in out.getvalue()

    def test_explicit_delta_zero_is_not_treated_as_unset(self, tmp_path):
        # Regression: `--delta 0.0` used to fall through the truthiness
        # check, silently leaving Gaussian candidates at their default
        # delta. It must reach them as an explicit (invalid) value: the
        # candidates are attempted and fail construction with a clear
        # message, rather than planning at a delta the caller never chose.
        out = io.StringIO()
        code = main(
            ["plan", "--workload", self._workload_file(tmp_path), "--delta", "0.0"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "GLM" in text  # Gaussian candidates were attempted...
        assert "failed" in text  # ...and rejected delta=0, visibly
        assert "delta" in text

    def test_budget_delta_without_budget_epsilon_is_a_usage_error(self, tmp_path):
        # The pairing is checked before any candidate fitting: usage-error
        # exit code 2, no traceback, no wasted fits.
        out = io.StringIO()
        code = main(
            ["plan", "--workload", self._workload_file(tmp_path),
             "--budget-delta", "1e-6"],
            out=out,
        )
        assert code == 2
        assert "--budget-epsilon" in out.getvalue()

    def test_budget_flags_add_capacity_line(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "plan", "--workload", self._workload_file(tmp_path),
                "--epsilon", "0.05", "--budget-epsilon", "1.0",
                "--budget-delta", "1e-6",
            ],
            out=out,
        )
        assert code == 0
        assert "releases/budget" in out.getvalue()
        assert "rdp x" in out.getvalue()


class TestServeTarget:
    def test_serve_requires_its_flags(self):
        out = io.StringIO()
        code = main(["serve"], out=out)
        assert code == 2
        message = out.getvalue()
        for flag in ("--plans", "--ledger-root", "--data", "--budget"):
            assert flag in message

    def test_serve_missing_flags_reported_individually(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["serve", "--plans", str(tmp_path), "--data", str(tmp_path / "x.npy")],
            out=out,
        )
        assert code == 2
        message = out.getvalue()
        assert "--ledger-root" in message and "--budget" in message
        assert "--plans" not in message

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--plans", "p", "--ledger-root", "l", "--data", "d.npy",
             "--budget", "2.0", "--workers", "4", "--port", "0",
             "--max-batch", "16", "--max-wait", "0.01", "--accountant", "rdp"]
        )
        assert args.budget == 2.0 and args.workers == 4
        assert args.max_batch == 16 and args.max_wait == 0.01
        assert args.accountant == "rdp"
        # serve must not inherit the experiments' deterministic default seed
        assert args.seed is None
