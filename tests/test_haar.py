"""Unit tests for the Haar wavelet substrate (WM's strategy)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.haar import (
    haar_analysis,
    haar_inverse_rows,
    haar_matrix,
    haar_sensitivity,
    haar_synthesis,
    is_power_of_two,
    next_power_of_two,
)


class TestPowerOfTwo:
    def test_is_power_of_two_true(self):
        for n in (1, 2, 4, 8, 1024):
            assert is_power_of_two(n)

    def test_is_power_of_two_false(self):
        for n in (0, 3, 6, 12, 100, -4):
            assert not is_power_of_two(n)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValidationError):
            next_power_of_two(0)


class TestSensitivity:
    def test_values(self):
        assert haar_sensitivity(1) == 1.0
        assert haar_sensitivity(2) == 2.0
        assert haar_sensitivity(8) == 4.0
        assert haar_sensitivity(1024) == 11.0

    def test_matches_matrix_column_norm(self):
        for n in (2, 4, 16):
            matrix = haar_matrix(n, sparse=False)
            col_norms = np.abs(matrix).sum(axis=0)
            assert np.allclose(col_norms, haar_sensitivity(n))

    def test_rejects_non_power(self):
        with pytest.raises(ValidationError):
            haar_sensitivity(6)


class TestAnalysisSynthesis:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 128])
    def test_round_trip(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        assert np.allclose(haar_synthesis(haar_analysis(x)), x)

    def test_analysis_matches_matrix(self):
        rng = np.random.default_rng(0)
        for n in (2, 8, 16):
            x = rng.standard_normal(n)
            matrix = haar_matrix(n, sparse=False)
            assert np.allclose(haar_analysis(x), matrix @ x)

    def test_root_is_total(self):
        x = np.arange(8.0)
        assert haar_analysis(x)[0] == pytest.approx(x.sum())

    def test_first_detail_is_half_difference(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        coefficients = haar_analysis(x)
        assert coefficients[1] == pytest.approx((1 + 2) - (3 + 4))

    def test_constant_vector_has_zero_details(self):
        coefficients = haar_analysis(np.full(16, 5.0))
        assert coefficients[0] == pytest.approx(80.0)
        assert np.allclose(coefficients[1:], 0.0)

    def test_linearity(self):
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal(16), rng.standard_normal(16)
        assert np.allclose(
            haar_analysis(2 * x + 3 * y), 2 * haar_analysis(x) + 3 * haar_analysis(y)
        )

    def test_rejects_non_power_length(self):
        with pytest.raises(ValidationError):
            haar_analysis(np.ones(6))

    def test_synthesis_rejects_non_power_length(self):
        with pytest.raises(ValidationError):
            haar_synthesis(np.ones(5))


class TestInverseRows:
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_matches_dense_inverse(self, n):
        rng = np.random.default_rng(n)
        w = rng.standard_normal((5, n))
        dense = haar_matrix(n, sparse=False)
        assert np.allclose(haar_inverse_rows(w), w @ np.linalg.inv(dense))

    def test_range_query_has_few_coefficients(self):
        # A dyadic range touches O(log n) wavelet basis elements.
        n = 64
        w = np.zeros((1, n))
        w[0, 16:32] = 1.0  # exactly one dyadic block
        coefficients = haar_inverse_rows(w)
        assert np.count_nonzero(np.abs(coefficients) > 1e-12) <= int(np.log2(n)) + 1

    def test_identity_workload_recovers_inverse(self):
        n = 8
        dense = haar_matrix(n, sparse=False)
        rows = haar_inverse_rows(np.eye(n))
        assert np.allclose(rows, np.linalg.inv(dense))


class TestHaarMatrix:
    def test_shape(self):
        assert haar_matrix(8).shape == (8, 8)

    def test_invertible(self):
        dense = haar_matrix(16, sparse=False)
        assert np.linalg.matrix_rank(dense) == 16

    def test_sparse_dense_agree(self):
        assert np.allclose(haar_matrix(8).toarray(), haar_matrix(8, sparse=False))

    def test_row_zero_is_ones(self):
        assert np.allclose(haar_matrix(4, sparse=False)[0], 1.0)

    def test_detail_rows_sum_to_zero(self):
        dense = haar_matrix(16, sparse=False)
        assert np.allclose(dense[1:].sum(axis=1), 0.0)
