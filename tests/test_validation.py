"""Unit tests for repro.linalg.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg.validation import (
    as_matrix,
    as_vector,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape_compatible,
    ensure_rng,
)


class TestAsMatrix:
    def test_list_of_lists(self):
        result = as_matrix([[1, 2], [3, 4]])
        assert result.dtype == np.float64
        assert result.shape == (2, 2)

    def test_preserves_values(self):
        assert np.array_equal(as_matrix([[1.5, -2.0]]), np.array([[1.5, -2.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_matrix([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_matrix(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_matrix([[np.inf, 1.0]])

    def test_sparse_rejected_by_default(self):
        with pytest.raises(ValidationError, match="dense"):
            as_matrix(sp.eye(3))

    def test_sparse_allowed_when_requested(self):
        result = as_matrix(sp.eye(3), allow_sparse=True)
        assert sp.issparse(result)
        assert result.shape == (3, 3)

    def test_error_message_uses_name(self):
        with pytest.raises(ValidationError, match="workload"):
            as_matrix([1.0], name="workload")


class TestAsVector:
    def test_basic(self):
        result = as_vector([1, 2, 3])
        assert result.shape == (3,)
        assert result.dtype == np.float64

    def test_column_vector_flattened(self):
        assert as_vector(np.ones((3, 1))).shape == (3,)

    def test_row_vector_flattened(self):
        assert as_vector(np.ones((1, 3))).shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            as_vector(np.ones((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_vector([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_vector([np.nan])

    def test_size_check_passes(self):
        assert as_vector([1, 2], size=2).size == 2

    def test_size_check_fails(self):
        with pytest.raises(ValidationError, match="length 3"):
            as_vector([1, 2], size=3)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(0.5) == 0.5

    def test_accepts_positive_int(self):
        assert check_positive(3) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"))

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive(True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive("1.0")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(5) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True)

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4)) == 4


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.25) == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.1)


class TestShapeCompatible:
    def test_compatible(self):
        check_shape_compatible(np.ones((2, 3)), np.ones(3))

    def test_incompatible(self):
        with pytest.raises(ValidationError, match="columns"):
            check_shape_compatible(np.ones((2, 3)), np.ones(4))


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(3)
        b = ensure_rng(42).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            ensure_rng("seed")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            ensure_rng(True)
