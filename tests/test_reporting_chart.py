"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.reporting import ascii_chart
from repro.experiments.runner import ExperimentResult


def _result():
    result = ExperimentResult(name="demo", sweep_parameter="n")
    for n, lm, lrm in [(64, 1e4, 1e3), (128, 2e4, 1.1e3), (256, 4e4, 1.2e3)]:
        result.add_row(mechanism="LM", n=n, average_squared_error=lm)
        result.add_row(mechanism="LRM", n=n, average_squared_error=lrm)
    return result


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(_result())
        assert "L=LM" in chart or "L=LRM" in chart
        assert "legend:" in chart
        assert "log10(error)" in chart

    def test_dimensions(self):
        chart = ascii_chart(_result(), width=40, height=10)
        grid_lines = [line for line in chart.splitlines() if line.startswith("  |")]
        assert len(grid_lines) == 10
        assert all(len(line) == 3 + 40 for line in grid_lines)

    def test_marker_positions_monotone(self):
        # LM grows: its markers should never move downward as x increases.
        chart = ascii_chart(_result(), mechanisms=["LM"], width=30, height=12)
        grid = [line[3:] for line in chart.splitlines() if line.startswith("  |")]
        positions = {}
        for row_index, row in enumerate(grid):
            for col_index, char in enumerate(row):
                if char == "L":
                    positions[col_index] = row_index
        cols = sorted(positions)
        rows = [positions[c] for c in cols]
        assert rows == sorted(rows, reverse=True)

    def test_single_mechanism_filter(self):
        chart = ascii_chart(_result(), mechanisms=["LRM"])
        assert "L=LRM" in chart

    def test_empty_series_message(self):
        result = ExperimentResult(name="empty", sweep_parameter="n")
        assert "(no data)" in ascii_chart(result)

    def test_rejects_non_result(self):
        with pytest.raises(ValidationError):
            ascii_chart([1, 2, 3])

    def test_linear_scale(self):
        chart = ascii_chart(_result(), log_y=False)
        assert "log10" not in chart
