"""Failpoint registry semantics (repro.testing.faults).

The crash-matrix suites (test_ledger_faults.py) rely on the registry
behaving exactly as documented: unknown names fail loudly, env arming
attaches at registration, "error" flows through OSError handling, and
"torn" only tears at guarded write sites.
"""

import io

import pytest

from repro.testing.faults import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    FailPoint,
    FailPointRegistry,
    InjectedFault,
    failpoints,
    ledger_write_failpoints,
    registered_failpoints,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    FailPoint.clear()
    yield
    FailPoint.clear()


class TestRegistry:
    def test_register_is_idempotent(self):
        registry = FailPointRegistry(environ={})
        assert registry.register("a.point") == "a.point"
        registry.register("a.point")
        assert registry.known() == ["a.point"]

    def test_unknown_name_raises_on_arm_fire_and_action(self):
        registry = FailPointRegistry(environ={})
        with pytest.raises(KeyError):
            registry.arm("nope", "error")
        with pytest.raises(KeyError):
            registry.fire("nope")
        with pytest.raises(KeyError):
            registry.action("nope")

    def test_unknown_action_raises(self):
        registry = FailPointRegistry(environ={})
        registry.register("a.point")
        with pytest.raises(ValueError):
            registry.arm("a.point", "explode")

    def test_unarmed_fire_is_noop(self):
        registry = FailPointRegistry(environ={})
        registry.register("a.point")
        registry.fire("a.point")  # must not raise

    def test_error_action_raises_injected_fault(self):
        registry = FailPointRegistry(environ={})
        registry.register("a.point")
        registry.arm("a.point", "error")
        with pytest.raises(InjectedFault):
            registry.fire("a.point")
        # InjectedFault is an OSError so production handlers catch it.
        registry.arm("a.point", "error")
        with pytest.raises(OSError):
            registry.fire("a.point")

    def test_disarm_one_and_all(self):
        registry = FailPointRegistry(environ={})
        registry.register("a.point")
        registry.register("b.point")
        registry.arm("a.point", "error")
        registry.arm("b.point", "error")
        registry.disarm("a.point")
        assert registry.action("a.point") is None
        assert registry.action("b.point") == "error"
        registry.disarm()
        assert registry.action("b.point") is None

    def test_active_context_manager_disarms_on_exit(self):
        registry = FailPointRegistry(environ={})
        registry.register("a.point")
        with registry.active("a.point", "error"):
            assert registry.action("a.point") == "error"
        assert registry.action("a.point") is None


class TestEnvTransport:
    def test_env_arming_attaches_at_registration(self):
        registry = FailPointRegistry(environ={ENV_VAR: "late.point=error"})
        # Not yet registered: arming is pending, not lost.
        registry.register("late.point")
        assert registry.action("late.point") == "error"

    def test_env_parses_multiple_entries(self):
        registry = FailPointRegistry(
            environ={ENV_VAR: "one.point=error, two.point=torn"}
        )
        registry.register("one.point")
        registry.register("two.point")
        assert registry.action("one.point") == "error"
        assert registry.action("two.point") == "torn"

    def test_malformed_env_entry_raises(self):
        with pytest.raises(ValueError):
            FailPointRegistry(environ={ENV_VAR: "no-equals-sign"})

    def test_empty_env_is_fine(self):
        registry = FailPointRegistry(environ={})
        assert registry.known() == []


class TestGuardedWrite:
    def test_unarmed_guarded_write_writes_everything(self):
        registry = FailPointRegistry(environ={})
        registry.register("w.torn")
        buffer = io.BytesIO()
        registry.guarded_write(buffer, b"hello world\n", "w.torn")
        assert buffer.getvalue() == b"hello world\n"

    def test_guarded_write_requires_known_point(self):
        registry = FailPointRegistry(environ={})
        with pytest.raises(KeyError):
            registry.guarded_write(io.BytesIO(), b"data", "w.torn")


class TestGlobalHelpers:
    def test_ledger_write_points_are_registered(self):
        known = set(registered_failpoints())
        for backend in ("journal", "sqlite"):
            points = ledger_write_failpoints(backend)
            assert points, backend
            assert set(points) <= known
        with pytest.raises(ValueError):
            ledger_write_failpoints("carrier-pigeon")

    def test_journal_matrix_covers_intent_and_commit_tears(self):
        points = ledger_write_failpoints("journal")
        assert "ledger.intent.torn" in points
        assert "ledger.commit.torn" in points
        assert "ledger.commit.before_append" in points
        assert "ledger.commit.after_append" in points

    def test_sqlite_matrix_covers_txn_commit(self):
        points = ledger_write_failpoints("sqlite")
        assert "sqlite.txn.before_commit" in points
        assert "sqlite.txn.after_commit" in points

    def test_failpoint_helpers_arm_global_registry(self):
        FailPoint.error_at("ledger.commit.before_append")
        assert failpoints.action("ledger.commit.before_append") == "error"
        FailPoint.clear()
        assert failpoints.action("ledger.commit.before_append") is None

    def test_crash_exit_code_is_sigkill_style(self):
        assert CRASH_EXIT_CODE == 137
