"""Unit tests for the Mechanism framework and the Laplace baselines."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.baselines import (
    LaplaceMechanism,
    NoiseOnDataMechanism,
    NoiseOnResultsMechanism,
)
from repro.mechanisms.registry import PAPER_MECHANISMS, make_mechanism, mechanism_names
from repro.workloads import Workload, wrange


class _EchoMechanism(Mechanism):
    """Trivial mechanism for framework tests: returns exact answers."""

    name = "ECHO"

    def _answer(self, x, epsilon, rng):
        return self.workload.answer(x)

    def expected_squared_error(self, epsilon):
        return 0.0


class TestFramework:
    def test_unfitted_answer_raises(self):
        with pytest.raises(NotFittedError):
            _EchoMechanism().answer(np.ones(3), 1.0)

    def test_unfitted_workload_raises(self):
        with pytest.raises(NotFittedError):
            _ = _EchoMechanism().workload

    def test_fit_returns_self(self):
        mech = _EchoMechanism()
        assert mech.fit(np.eye(3)) is mech
        assert mech.is_fitted

    def test_as_workload_coerces_matrix(self):
        w = as_workload(np.eye(2))
        assert isinstance(w, Workload)

    def test_as_workload_passthrough(self):
        w = Workload(np.eye(2))
        assert as_workload(w) is w

    def test_answer_validates_length(self):
        mech = _EchoMechanism().fit(np.eye(3))
        with pytest.raises(ValidationError):
            mech.answer(np.ones(4), 1.0)

    def test_answer_validates_epsilon(self):
        mech = _EchoMechanism().fit(np.eye(3))
        with pytest.raises(ValidationError):
            mech.answer(np.ones(3), 0.0)

    def test_empirical_error_zero_for_echo(self):
        mech = _EchoMechanism().fit(np.eye(3))
        assert mech.empirical_squared_error(np.ones(3), 1.0, trials=2) == 0.0

    def test_average_expected_error_divides_by_m(self):
        mech = _EchoMechanism().fit(np.ones((4, 2)))
        assert mech.average_expected_error(1.0) == 0.0

    def test_repr_states_fit(self):
        mech = _EchoMechanism()
        assert "unfitted" in repr(mech)
        mech.fit(np.eye(2))
        assert "fitted" in repr(mech)


class TestNoiseOnData:
    def test_analytic_error_formula(self):
        w = Workload([[1.0, 2.0], [0.0, 1.0]])
        mech = NoiseOnDataMechanism().fit(w)
        # 2 * ||W||_F^2 / eps^2 = 2 * 6 / 0.25
        assert mech.expected_squared_error(0.5) == pytest.approx(2 * 6 / 0.25)

    def test_empirical_matches_analytic(self):
        w = wrange(10, 32, seed=0)
        mech = NoiseOnDataMechanism().fit(w)
        x = np.ones(32) * 50
        empirical = mech.empirical_squared_error(x, 1.0, trials=3000, rng=0)
        assert empirical == pytest.approx(mech.expected_squared_error(1.0), rel=0.1)

    def test_unbiased(self):
        w = wrange(5, 16, seed=1)
        mech = NoiseOnDataMechanism().fit(w)
        x = np.arange(16.0)
        rng = np.random.default_rng(0)
        answers = np.mean([mech.answer(x, 1.0, rng) for _ in range(3000)], axis=0)
        exact = w.answer(x)
        assert np.allclose(answers, exact, atol=2.0)

    def test_error_decreases_with_epsilon(self):
        w = wrange(5, 16, seed=1)
        mech = NoiseOnDataMechanism().fit(w)
        assert mech.expected_squared_error(1.0) < mech.expected_squared_error(0.1)

    def test_quadratic_in_inverse_epsilon(self):
        w = wrange(5, 16, seed=1)
        mech = NoiseOnDataMechanism().fit(w)
        assert mech.expected_squared_error(0.1) == pytest.approx(
            100 * mech.expected_squared_error(1.0)
        )

    def test_lm_alias(self):
        assert LaplaceMechanism is NoiseOnDataMechanism


class TestNoiseOnResults:
    def test_analytic_error_formula(self):
        w = Workload([[1.0, 1.0], [0.0, 1.0]])  # sensitivity 2
        mech = NoiseOnResultsMechanism().fit(w)
        assert mech.expected_squared_error(1.0) == pytest.approx(2 * 2 * 4)

    def test_empirical_matches_analytic(self):
        w = wrange(8, 16, seed=2)
        mech = NoiseOnResultsMechanism().fit(w)
        x = np.ones(16)
        empirical = mech.empirical_squared_error(x, 1.0, trials=3000, rng=1)
        assert empirical == pytest.approx(mech.expected_squared_error(1.0), rel=0.1)

    def test_zero_workload_returns_exact(self):
        w = Workload(np.zeros((2, 3)))
        mech = NoiseOnResultsMechanism().fit(w)
        assert np.allclose(mech.answer(np.ones(3), 1.0, rng=0), 0.0)

    def test_intro_example_tradeoff(self):
        # Section 3.2: M_R beats M_D iff m * max_j sum_i W_ij^2 < ||W||_F^2;
        # for m >= n, M_R can never win.
        w = Workload(np.eye(4))
        nod = NoiseOnDataMechanism().fit(w)
        nor = NoiseOnResultsMechanism().fit(w)
        assert nor.expected_squared_error(1.0) >= nod.expected_squared_error(1.0)


class TestRegistry:
    def test_paper_mechanisms_constant(self):
        assert PAPER_MECHANISMS == ("MM", "LM", "WM", "HM", "LRM")

    def test_all_names_constructible(self):
        for name in mechanism_names():
            mech = make_mechanism(name)
            assert isinstance(mech, Mechanism)

    def test_case_insensitive(self):
        assert make_mechanism("lrm").name == "LRM"

    def test_kwargs_forwarded(self):
        mech = make_mechanism("LRM", rank=5)
        assert mech.rank == 5

    def test_unknown_raises(self):
        with pytest.raises(ValidationError):
            make_mechanism("XYZ")

    def test_lm_is_noise_on_data(self):
        assert isinstance(make_mechanism("LM"), NoiseOnDataMechanism)
