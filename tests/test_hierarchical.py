"""Unit tests for the Hierarchical Mechanism (HM)."""

import numpy as np
import pytest

from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.workloads import Workload, wrange


class TestHierarchicalMechanism:
    def test_answer_shape(self):
        w = wrange(6, 16, seed=0)
        mech = HierarchicalMechanism().fit(w)
        assert mech.answer(np.ones(16), 1.0, rng=0).shape == (6,)

    def test_sensitivity_is_tree_height(self):
        mech = HierarchicalMechanism().fit(wrange(4, 16, seed=0))
        assert mech.strategy_sensitivity == 5.0  # log2(16) + 1

    def test_num_nodes(self):
        mech = HierarchicalMechanism().fit(wrange(4, 16, seed=0))
        assert mech.num_nodes == 31

    def test_padding(self):
        mech = HierarchicalMechanism().fit(wrange(4, 10, seed=0))
        assert mech.strategy_sensitivity == 5.0  # padded to 16
        assert mech.answer(np.ones(10), 1.0, rng=0).shape == (4,)

    def test_unbiased(self):
        w = wrange(4, 8, seed=1)
        mech = HierarchicalMechanism().fit(w)
        x = np.arange(8.0) * 5
        rng = np.random.default_rng(0)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        assert np.allclose(mean_answer, w.answer(x), atol=3.0)

    def test_empirical_matches_analytic(self):
        w = wrange(8, 32, seed=2)
        mech = HierarchicalMechanism().fit(w)
        x = np.ones(32) * 100
        empirical = mech.empirical_squared_error(x, 1.0, trials=2000, rng=3)
        assert empirical == pytest.approx(mech.expected_squared_error(1.0), rel=0.15)

    def test_analytic_error_against_dense_algebra(self):
        from repro.linalg.trees import tree_matrix, tree_sensitivity

        w = wrange(5, 16, seed=4)
        mech = HierarchicalMechanism().fit(w)
        dense = tree_matrix(16, sparse=False)
        recombination = w.matrix @ np.linalg.pinv(dense)
        delta = tree_sensitivity(16)
        expected = 2 * delta**2 * np.sum(recombination**2)
        assert mech.expected_squared_error(1.0) == pytest.approx(expected, rel=1e-6)

    def test_beats_lm_on_large_range_workload(self):
        # The paper's Figure 5 places the HM/LM crossover at n ~ 512;
        # test comfortably past it.
        w = wrange(32, 2048, seed=5)
        hm = HierarchicalMechanism().fit(w)
        lm = NoiseOnDataMechanism().fit(w)
        assert hm.expected_squared_error(1.0) < lm.expected_squared_error(1.0)

    def test_total_query_cheap(self):
        # The total is the root node; consistency only sharpens it.
        w = Workload(np.ones((1, 64)))
        mech = HierarchicalMechanism().fit(w)
        delta = mech.strategy_sensitivity
        assert mech.expected_squared_error(1.0) <= 2 * delta**2 + 1e-9
