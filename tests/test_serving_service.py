"""Serving-tier tests: shared plan segments, the worker pool, the
micro-batching coalescer and the TCP front-end.

The contracts under test:

* **Zero-copy sharing** — workers rebuild plans from read-only views into
  one shared segment, through the same verification as a disk load.
* **Multi-tenant isolation** — tenants spend from separate ledgers;
  one tenant's releases never move another's budget.
* **Coalescer semantics** — request order is preserved within a batch,
  batch budget refusal degrades to sequential admission, and ``drain``
  serves everything accepted before shutdown.
* **Crash safety** — a worker killed mid-spend leaves at most a dangling
  intent (never a committed overcharge), and the service keeps serving.
* **Replay bit-identity** — after any amount of multi-worker concurrency,
  replaying a tenant's ledger through a fresh accountant reproduces the
  served budget exactly.

Worker processes use the ``spawn`` start method, so every pool test pays
a couple of interpreter startups — the suite keeps worker counts at 1-2
and shares the staged plan directory across tests.
"""

import asyncio
import multiprocessing

import numpy as np
import pytest

from repro.engine.plan import build_plan
from repro.exceptions import ValidationError
from repro.io.serialization import load_plan, save_plan
from repro.privacy.ledger import inspect_ledger
from repro.serving import (
    AsyncServiceClient,
    Coalescer,
    PlanService,
    RemoteExecutionError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    WorkerConfig,
    WorkerPool,
    attach_plans,
    stage_plans,
)
from repro.workloads import prefix_workload, wrelated

N = 32


@pytest.fixture(scope="module")
def plans_dir(tmp_path_factory):
    """A directory of two cheap (LM) plan archives, shared by the module."""
    directory = tmp_path_factory.mktemp("plans")
    for name, workload in (
        ("related", wrelated(8, N, s=2, seed=1)),
        ("prefix", prefix_workload(N)),
    ):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, directory / f"{name}.plan.npz")
    return directory


@pytest.fixture
def data():
    return np.arange(float(N))


# --------------------------------------------------------------------- #
# Shared plan store
# --------------------------------------------------------------------- #
class TestSharedPlans:
    def test_stage_attach_roundtrip(self, plans_dir, data):
        store, manifest = stage_plans(plans_dir, data)
        try:
            assert store.plan_names() == ["prefix", "related"]
            attached = attach_plans(manifest)
            try:
                plan = attached.plan("related")
                loaded = load_plan(plans_dir / "related.plan.npz")
                assert plan.plan_key == loaded.plan_key
                assert plan.explain() == loaded.explain()
                shared_vector, epoch = attached.data()
                assert np.array_equal(shared_vector, data)
                assert not shared_vector.flags.writeable
                assert isinstance(epoch, str) and epoch
                assert epoch == manifest.data_epoch
            finally:
                attached.close()
        finally:
            store.unlink()

    def test_plan_views_are_read_only_and_cached(self, plans_dir, data):
        store, _ = stage_plans(plans_dir, data)
        try:
            plan = store.plan("prefix")
            assert store.plan("prefix") is plan  # rebuilt once per process
            matrix = plan.mechanism.workload.matrix
            assert not matrix.flags.writeable
            with pytest.raises((ValueError, ValidationError)):
                matrix[0, 0] = 99.0
        finally:
            store.unlink()

    def test_unknown_plan_and_empty_dir_rejected(self, plans_dir, data, tmp_path):
        store, _ = stage_plans(plans_dir, data)
        try:
            with pytest.raises(ValidationError, match="unknown plan"):
                store.plan("nope")
        finally:
            store.unlink()
        with pytest.raises(ValidationError, match="no .*plan.npz"):
            stage_plans(tmp_path / "empty", data)


# --------------------------------------------------------------------- #
# Worker pool
# --------------------------------------------------------------------- #
class TestWorkerPool:
    def test_execute_budget_and_tenant_isolation(self, plans_dir, data, tmp_path):
        store, manifest = stage_plans(plans_dir, data)
        pool = WorkerPool(
            WorkerConfig(
                manifest=manifest, ledger_root=tmp_path / "ledgers",
                total_epsilon=1.0, seed=5,
            ),
            workers=1,
        )
        try:
            status, releases = pool.submit(
                ("execute", "alice", "related", [(0.05, {}), (0.05, {"integral": True})])
            )
            assert status == "ok" and len(releases) == 2
            assert len(releases[0]["values"]) == 8
            assert all(float(v).is_integer() for v in releases[1]["values"])

            status, budget = pool.submit(("budget", "alice"))
            assert status == "ok"
            assert budget["spent_epsilon"] == pytest.approx(0.1)

            # bob's ledger is a different file; alice's spend is invisible
            status, budget = pool.submit(("budget", "bob"))
            assert status == "ok" and budget["spent_epsilon"] == 0.0
            ledgers = sorted(
                p.name for p in (tmp_path / "ledgers").glob("*.journal")
            )
            assert ledgers == ["alice.journal", "bob.journal"]

            # worker-side failures come back as error tuples, never raw
            status, kind, _ = pool.submit(("execute", "alice", "nope", [(0.1, {})]))
            assert (status, kind) == ("error", "ValidationError")
            status, kind, _ = pool.submit(("frobnicate",))
            assert (status, kind) == ("error", "ValidationError")
        finally:
            pool.shutdown()
            store.unlink()


# --------------------------------------------------------------------- #
# Coalescer (in-process: a fake pool keeps these fast and deterministic)
# --------------------------------------------------------------------- #
class _FakePool:
    """Worker-pool stand-in: replies like a worker, records every command."""

    def __init__(self, remaining=None):
        self.commands = []
        self.remaining = remaining  # per-pool budget when not None

    def submit(self, command, timeout=None, retry_delivered=False):
        assert command[0] == "execute"
        _, tenant, plan_name, requests = command
        self.commands.append(command)
        if self.remaining is not None:
            total = sum(request[0] for request in requests)
            if total > self.remaining + 1e-12:
                return ("error", "PrivacyBudgetError", "insufficient budget")
            self.remaining -= total
        return (
            "ok",
            [
                {"tenant": tenant, "plan": plan_name, "epsilon": request[0]}
                for request in requests
            ],
        )


class TestCoalescer:
    def test_batch_formation_and_request_order(self):
        async def scenario():
            pool = _FakePool()
            coalescer = Coalescer(pool, max_batch=5, max_wait=0.5)
            epsilons = [0.01, 0.02, 0.03, 0.04, 0.05]
            results = await asyncio.gather(
                *[coalescer.submit("alice", "related", e) for e in epsilons]
            )
            return pool, coalescer, epsilons, results

        pool, coalescer, epsilons, results = asyncio.run(scenario())
        assert coalescer.batches_flushed == 1
        assert coalescer.requests_coalesced == 5
        assert len(pool.commands) == 1
        # results resolve onto the originating futures in request order
        assert [r["epsilon"] for r in results] == epsilons

    def test_buckets_are_per_tenant_and_plan(self):
        async def scenario():
            pool = _FakePool()
            coalescer = Coalescer(pool, max_batch=10, max_wait=0.01)
            await asyncio.gather(
                coalescer.submit("alice", "related", 0.01),
                coalescer.submit("alice", "prefix", 0.01),
                coalescer.submit("bob", "related", 0.01),
            )
            return pool

        pool = asyncio.run(scenario())
        keys = sorted((cmd[1], cmd[2]) for cmd in pool.commands)
        assert keys == [("alice", "prefix"), ("alice", "related"), ("bob", "related")]

    def test_budget_refusal_degrades_to_sequential_admission(self):
        async def scenario():
            pool = _FakePool(remaining=0.25)
            coalescer = Coalescer(pool, max_batch=5, max_wait=0.5)
            results = await asyncio.gather(
                *[coalescer.submit("alice", "related", 0.1) for _ in range(5)],
                return_exceptions=True,
            )
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        served = [r for r in results if isinstance(r, dict)]
        refused = [r for r in results if isinstance(r, RemoteExecutionError)]
        # 0.25 remaining admits exactly the first two 0.1 requests — and
        # arrival order decides *which* two, as unbatched arrival would.
        assert [isinstance(r, dict) for r in results] == [
            True, True, False, False, False
        ]
        assert len(served) == 2 and len(refused) == 3
        assert all(error.kind == "PrivacyBudgetError" for error in refused)
        assert coalescer.sequential_retries == 5

    def test_drain_flushes_pending_and_refuses_new_work(self):
        async def scenario():
            pool = _FakePool()
            # Neither trigger can fire on its own: the bucket stays pending
            # until drain flushes it.
            coalescer = Coalescer(pool, max_batch=100, max_wait=30.0)
            tasks = [
                asyncio.ensure_future(coalescer.submit("alice", "related", 0.01))
                for _ in range(3)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            await coalescer.drain()
            results = await asyncio.gather(*tasks)
            with pytest.raises(RemoteExecutionError, match="draining"):
                await coalescer.submit("alice", "related", 0.01)
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        assert len(results) == 3 and all(r["epsilon"] == 0.01 for r in results)
        assert coalescer.batches_flushed == 1


# --------------------------------------------------------------------- #
# End-to-end service (TCP) + replay bit-identity
# --------------------------------------------------------------------- #
class TestServiceEndToEnd:
    def test_serve_coalesce_account_and_replay(self, plans_dir, data, tmp_path):
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root, data=data,
            total_epsilon=2.0, workers=2, seed=11, max_batch=8, max_wait=0.005,
        )

        async def scenario():
            service = PlanService(config)
            host, port = await service.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                plans = (await client.request({"op": "plan"}))["plans"]
                assert sorted(p["name"] for p in plans) == ["prefix", "related"]

                releases = await asyncio.gather(
                    *[client.execute("alice", "related", 0.05) for _ in range(16)]
                )
                assert all(len(r["values"]) == 8 for r in releases)
                # concurrent same-key requests actually formed batches
                assert service.coalescer.batches_flushed < 16
                assert service.coalescer.requests_coalesced == 16

                budget = await client.budget("alice")
                other = await client.budget("bob")
                explain = (
                    await client.request(
                        {"op": "explain", "plan": "related", "epsilon": 0.1}
                    )
                )["explain"]

                with pytest.raises(ServiceError) as excinfo:
                    await client.execute("../evil", "related", 0.01)
                assert excinfo.value.kind == "ValidationError"
                with pytest.raises(ServiceError):
                    await client.execute("alice", "related", "lots")
            finally:
                await client.close()
                await service.shutdown()
            return budget, other, explain

        budget, other, explain = asyncio.run(scenario())
        assert budget["spent_epsilon"] == pytest.approx(16 * 0.05)
        assert other["spent_epsilon"] == 0.0  # isolation, again over TCP
        assert "LM" in explain

        # Replay bit-identity: a fresh accountant folding the durable
        # ledger reproduces the served spend *exactly* (==, not approx),
        # despite two workers having interleaved batches.
        replayed = inspect_ledger(ledger_root / "alice.journal")
        assert replayed["spent_epsilon"] == budget["spent_epsilon"]
        assert replayed["dangling_intents"] == []
        assert inspect_ledger(ledger_root / "bob.journal")["spent_epsilon"] == 0.0

    def test_worker_crash_mid_spend_no_double_charge(self, plans_dir, data, tmp_path):
        ledger_root = tmp_path / "ledgers"
        config = ServiceConfig(
            plans_dir=plans_dir, ledger_root=ledger_root, data=data,
            total_epsilon=2.0, workers=2, seed=13, max_batch=8, max_wait=0.002,
        )
        # Worker 0 dies between writing the intent and the commit — the
        # moment a kill -9 would be worst. Its replacement (index 2) and
        # worker 1 carry no failpoints.
        failpoints = {0: {"ledger.commit.before_append": "crash"}}

        async def scenario():
            service = PlanService(config, failpoints_by_worker=failpoints)
            await service.start()
            try:
                with pytest.raises(RemoteExecutionError) as excinfo:
                    await service.execute("alice", "related", 0.3)
                assert excinfo.value.kind == "WorkerCrashError"

                # the service keeps serving on the surviving + respawned workers
                release = await service.execute("alice", "related", 0.05)
                assert len(release["values"]) == 8
                budget = await service.budget("alice")
            finally:
                await service.shutdown()
            return budget

        budget = asyncio.run(scenario())
        # The crashed spend never committed: only the post-crash release
        # is charged. The dead worker left exactly one dangling intent.
        assert budget["spent_epsilon"] == pytest.approx(0.05)
        replayed = inspect_ledger(ledger_root / "alice.journal")
        assert replayed["spent_epsilon"] == budget["spent_epsilon"]
        assert len(replayed["dangling_intents"]) == 1


# --------------------------------------------------------------------- #
# Data-epoch fork regression
# --------------------------------------------------------------------- #
def _emit_child_epoch(connection):
    from repro.engine.query_engine import _next_data_epoch

    connection.send(_next_data_epoch())
    connection.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)
def test_forked_process_resalts_epoch_tokens():
    """A fork duplicates the module-level epoch state; the child must mint
    tokens under a fresh (pid, salt) so it can never re-issue a token the
    parent already cached strategy answers against."""
    from repro.engine.query_engine import _next_data_epoch

    parent_tokens = [_next_data_epoch() for _ in range(3)]
    parent_salt = parent_tokens[0].split("-")[1]

    context = multiprocessing.get_context("fork")
    parent_end, child_end = context.Pipe()
    process = context.Process(target=_emit_child_epoch, args=(child_end,))
    process.start()
    child_end.close()
    child_token = parent_end.recv()
    process.join(10)

    child_pid, child_salt, child_counter = child_token.split("-")
    assert child_token not in parent_tokens
    assert int(child_pid) == process.pid
    assert child_salt != parent_salt  # fresh salt, even if the OS reuses pids
    assert child_counter == "1"  # counter restarted, collision-free via salt
