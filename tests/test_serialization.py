"""Unit tests for decomposition / mechanism persistence."""

import numpy as np
import pytest

from repro.core.alm import decompose_workload
from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism
from repro.exceptions import ValidationError
from repro.io.serialization import (
    load_decomposition,
    load_fitted_lrm,
    save_decomposition,
    save_fitted_lrm,
)
from repro.workloads import wrelated

FAST = {"max_outer": 20, "max_inner": 4, "nesterov_iters": 20, "stall_iters": 6}


class TestDecompositionRoundTrip:
    def test_round_trip_preserves_factors(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, **FAST)
        path = tmp_path / "dec.npz"
        save_decomposition(dec, path)
        restored = load_decomposition(path)
        assert np.array_equal(restored.b, dec.b)
        assert np.array_equal(restored.l, dec.l)

    def test_round_trip_preserves_metadata(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, norm="l2", **FAST)
        path = tmp_path / "dec.npz"
        save_decomposition(dec, path)
        restored = load_decomposition(path)
        assert restored.norm == "l2"
        assert restored.converged == dec.converged
        assert restored.iterations == dec.iterations
        assert restored.residual_norm == pytest.approx(dec.residual_norm)
        assert len(restored.history) == len(dec.history)

    def test_derived_quantities_survive(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        dec = decompose_workload(wl.matrix, **FAST)
        path = tmp_path / "dec.npz"
        save_decomposition(dec, path)
        restored = load_decomposition(path)
        assert restored.sensitivity == pytest.approx(dec.sensitivity)
        assert restored.expected_noise_error(1.0) == pytest.approx(
            dec.expected_noise_error(1.0)
        )

    def test_rejects_non_decomposition(self, tmp_path):
        with pytest.raises(ValidationError):
            save_decomposition({"b": 1}, tmp_path / "x.npz")

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValidationError):
            load_decomposition(path)


class TestFittedMechanismRoundTrip:
    def test_restored_mechanism_answers_identically(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        mech = LowRankMechanism(**FAST).fit(wl)
        path = tmp_path / "lrm.npz"
        save_fitted_lrm(mech, path)
        restored = load_fitted_lrm(path)
        x = np.arange(24.0)
        assert np.allclose(restored.answer(x, 1.0, rng=5), mech.answer(x, 1.0, rng=5))

    def test_restored_expected_error_matches(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        mech = LowRankMechanism(**FAST).fit(wl)
        path = tmp_path / "lrm.npz"
        save_fitted_lrm(mech, path)
        restored = load_fitted_lrm(path)
        assert restored.expected_squared_error(0.5) == pytest.approx(
            mech.expected_squared_error(0.5)
        )

    def test_gaussian_class_restored(self, tmp_path):
        wl = wrelated(8, 24, s=2, seed=0)
        mech = GaussianLowRankMechanism(delta=1e-7, **FAST).fit(wl)
        path = tmp_path / "glrm.npz"
        save_fitted_lrm(mech, path)
        restored = load_fitted_lrm(path)
        assert isinstance(restored, GaussianLowRankMechanism)
        assert restored.delta == pytest.approx(1e-7)
        assert restored.decomposition.norm == "l2"

    @staticmethod
    def _tamper(path, name, mutate):
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload[name] = mutate(payload[name])
        np.savez_compressed(path, **payload)

    def test_tampered_arrays_rejected(self, tmp_path):
        # The stored digest must actually be enforced on load: shrinking
        # L's norms would mis-calibrate the noise scale.
        wl = wrelated(8, 24, s=2, seed=0)
        path = tmp_path / "lrm.npz"
        save_fitted_lrm(LowRankMechanism(**FAST).fit(wl), path)
        self._tamper(path, "l", lambda l: l * 0.01)
        with pytest.raises(ValidationError, match="integrity"):
            load_fitted_lrm(path)

    def test_dtype_swapped_arrays_rejected(self, tmp_path):
        # Same raw bytes, different dtype: the digest covers the dtype, so
        # a reinterpreted L (garbage sensitivity) cannot slip through.
        wl = wrelated(8, 24, s=2, seed=0)
        path = tmp_path / "lrm.npz"
        save_fitted_lrm(LowRankMechanism(**FAST).fit(wl), path)
        self._tamper(path, "l", lambda l: l.view(np.int64))
        with pytest.raises(ValidationError, match="integrity"):
            load_fitted_lrm(path)

    def test_rejects_unfitted(self, tmp_path):
        with pytest.raises(ValidationError):
            save_fitted_lrm(LowRankMechanism(), tmp_path / "x.npz")

    def test_rejects_wrong_type(self, tmp_path):
        from repro.mechanisms.baselines import NoiseOnDataMechanism

        mech = NoiseOnDataMechanism().fit(np.eye(3))
        with pytest.raises(ValidationError):
            save_fitted_lrm(mech, tmp_path / "x.npz")


class TestAtomicWrites:
    """Every on-disk write goes through repro.io.atomic: a failed or
    crashed save leaves the previous archive intact, never a torn one."""

    def _decomposition(self):
        wl = wrelated(8, 24, s=2, seed=0)
        return decompose_workload(wl.matrix, **FAST)

    def test_failed_replace_leaves_original_intact(self, tmp_path):
        from repro.testing.faults import FailPoint, InjectedFault, failpoints

        dec = self._decomposition()
        path = tmp_path / "dec.npz"
        save_decomposition(dec, path)
        original = path.read_bytes()

        other = decompose_workload(wrelated(8, 24, s=2, seed=1).matrix, **FAST)
        failpoints.arm("io.atomic.before_replace", "error")
        try:
            with pytest.raises(InjectedFault):
                save_decomposition(other, path)
        finally:
            FailPoint.clear()
        # The original archive survives byte-for-byte and still loads.
        assert path.read_bytes() == original
        assert np.array_equal(load_decomposition(path).b, dec.b)
        # The staging file was cleaned up.
        assert list(tmp_path.iterdir()) == [path]

    def test_no_staging_residue_after_success(self, tmp_path):
        path = tmp_path / "dec.npz"
        save_decomposition(self._decomposition(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["dec.npz"]

    def test_extensionless_path_gains_npz_suffix(self, tmp_path):
        # Mirrors numpy's np.savez convention, which handing a file object
        # to savez would otherwise bypass.
        save_decomposition(self._decomposition(), tmp_path / "dec")
        assert (tmp_path / "dec.npz").exists()
        assert load_decomposition(tmp_path / "dec.npz") is not None

    def test_fitted_lrm_save_is_atomic_too(self, tmp_path):
        from repro.testing.faults import FailPoint, InjectedFault, failpoints

        wl = wrelated(8, 24, s=2, seed=0)
        path = tmp_path / "lrm.npz"
        save_fitted_lrm(LowRankMechanism(**FAST).fit(wl), path)
        original = path.read_bytes()
        failpoints.arm("io.atomic.before_replace", "error")
        try:
            with pytest.raises(InjectedFault):
                save_fitted_lrm(LowRankMechanism(**FAST).fit(wl), path)
        finally:
            FailPoint.clear()
        assert path.read_bytes() == original
        assert load_fitted_lrm(path).workload.name == wl.name
