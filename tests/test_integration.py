"""Integration tests: end-to-end scenarios straight from the paper's text."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_mechanisms
from repro.analysis.theory import (
    decomposition_expected_error,
    noise_on_data_error,
    noise_on_results_error,
)
from repro.core.bounds import hardt_talwar_lower_bound, lrm_error_upper_bound
from repro.core.lrm import LowRankMechanism
from repro.experiments.runner import dataset_vector
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.privacy.budget import PrivacyBudget
from repro.workloads import Workload, wrelated

FAST = {"max_outer": 25, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}


class TestIntroductionExample:
    """Section 1's running example: q1 = q2 + q3 over four states."""

    W = np.array(
        [
            [1.0, 1.0, 1.0, 1.0],  # q1 = x_NY + x_NJ + x_CA + x_WA
            [1.0, 1.0, 0.0, 0.0],  # q2 = x_NY + x_NJ
            [0.0, 0.0, 1.0, 1.0],  # q3 = x_CA + x_WA
        ]
    )

    def test_sensitivities_from_the_text(self):
        from repro.privacy.sensitivity import l1_sensitivity

        assert l1_sensitivity(self.W) == 2.0  # {q1, q2, q3}
        assert l1_sensitivity(self.W[1:]) == 1.0  # {q2, q3}

    def test_hand_built_strategy_matches_text(self):
        # Answering via {q2, q3}: B = [[1,1],[1,0],[0,1]], L = rows q2, q3.
        # Text: noise variance 2/eps^2 each for q2, q3; 4/eps^2 for q1;
        # total expected squared error = 8/eps^2.
        b = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        l = self.W[1:]
        assert np.allclose(b @ l, self.W)
        assert decomposition_expected_error(b, l, 1.0) == pytest.approx(8.0)

    def test_naive_baselines_match_text(self):
        # NOQ: sensitivity 2 -> variance 8/eps^2 per query, 24 total.
        assert noise_on_results_error(self.W, 1.0) == pytest.approx(24.0)
        # NOD: 8/eps^2 + 4/eps^2 + 4/eps^2 = 16 total.
        assert noise_on_data_error(self.W, 1.0) == pytest.approx(16.0)

    def test_lrm_finds_strategy_at_least_as_good_as_hand_built(self):
        # The text's optimal strategy answers via {q2, q3} with total
        # expected squared error 8/eps^2. The bi-convex solver needs a
        # generous budget (or restarts) to escape the symmetric local
        # stationary point on this tiny instance.
        mech = LowRankMechanism(
            rank=2, max_outer=400, max_inner=10, nesterov_iters=100, stall_iters=60
        ).fit(Workload(self.W))
        assert mech.expected_squared_error(1.0) <= 8.0 * 1.05

    def test_second_intro_example_optimal_strategy(self):
        # The weighted example: optimal SSE is 39/eps^2 with the strategy
        # given in the text; NOD achieves 40/eps^2.
        w = np.array(
            [
                [0.0, 2.0, 1.0, 1.0],  # q1 = 2 x_NJ + x_CA + x_WA
                [0.0, 1.0, 0.0, 2.0],  # q2 = x_NJ + 2 x_WA
                [1.0, 0.0, 2.0, 2.0],  # q3 = x_NY + 2 x_CA + 2 x_WA
            ]
        )
        assert noise_on_data_error(w, 1.0) == pytest.approx(40.0)
        mech = LowRankMechanism(rank=4, max_outer=60, max_inner=6, nesterov_iters=60).fit(
            Workload(w)
        )
        # LRM should at least approach the hand-derived optimum of 39.
        assert mech.expected_squared_error(1.0) <= 40.5


class TestBoundsSandwich:
    def test_lower_bound_below_upper_bound_scaled(self):
        wl = wrelated(16, 32, s=4, seed=0)
        upper = lrm_error_upper_bound(wl.singular_values, 1.0)
        lower = hardt_talwar_lower_bound(wl.singular_values, 1.0)
        # Not guaranteed lower <= upper in raw constants (Omega hides one),
        # but for well-conditioned spectra the ordering holds within C^2 r.
        ratio = upper / lower
        assert ratio > 0


class TestEndToEndPipeline:
    def test_full_release_on_synthetic_dataset(self):
        n = 64
        x = dataset_vector("social_network", n, seed=0)
        wl = wrelated(m=16, n=n, s=3, seed=1)
        budget = PrivacyBudget(1.0)
        mech = LowRankMechanism(**FAST).fit(wl)
        eps = budget.spend(0.5)
        noisy = mech.answer(x, eps, rng=2)
        assert noisy.shape == (16,)
        assert budget.remaining == pytest.approx(0.5)

    def test_repeated_release_consumes_budget(self):
        budget = PrivacyBudget(0.2)
        budget.spend(0.1)
        budget.spend(0.1)
        assert not budget.can_spend(0.1)

    def test_comparison_ranks_lrm_first_in_favorable_regime(self):
        n = 256
        wl = wrelated(m=16, n=n, s=2, seed=3)
        x = dataset_vector("search_logs", n, seed=3)
        rows = compare_mechanisms(
            wl,
            x,
            epsilon=0.1,
            mechanisms=("LM", "WM", "HM", "LRM"),
            trials=10,
            rng=4,
            mechanism_kwargs={"LRM": FAST},
        )
        errors = {row.mechanism: row.average_squared_error for row in rows}
        assert errors["LRM"] == min(errors.values())

    def test_lrm_vs_nod_expected_error_analytics(self):
        wl = wrelated(m=16, n=256, s=2, seed=5)
        lrm = LowRankMechanism(**FAST).fit(wl)
        nod = NoiseOnDataMechanism().fit(wl)
        # Orders-of-magnitude regime from Figure 6/8.
        assert nod.expected_squared_error(0.1) / lrm.expected_squared_error(0.1) > 2.0
