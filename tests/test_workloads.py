"""Unit tests for the Workload class and the Section-6 generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads import (
    WORKLOAD_KINDS,
    Workload,
    identity_workload,
    prefix_workload,
    total_workload,
    wdiscrete,
    workload_by_name,
    wrange,
    wrelated,
)


class TestWorkloadClass:
    def test_shape_properties(self):
        w = Workload(np.ones((3, 5)))
        assert w.num_queries == 3
        assert w.domain_size == 5
        assert w.shape == (3, 5)

    def test_answer(self):
        w = Workload([[1.0, 1.0], [1.0, 0.0]])
        assert np.allclose(w.answer([3.0, 4.0]), [7.0, 3.0])

    def test_answer_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            Workload(np.ones((2, 3))).answer([1.0, 2.0])

    def test_matrix_read_only(self):
        w = Workload(np.ones((2, 2)))
        with pytest.raises(ValueError):
            w.matrix[0, 0] = 5.0

    def test_rank_cached_and_correct(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((8, 2)) @ rng.standard_normal((2, 10))
        w = Workload(matrix)
        assert w.rank == 2
        assert w.rank == 2  # cached path

    def test_singular_values_descending(self):
        w = Workload(np.diag([1.0, 3.0, 2.0]))
        assert np.allclose(w.singular_values, [3.0, 2.0, 1.0])

    def test_sensitivity(self):
        w = Workload([[1.0, -2.0], [1.0, 1.0]])
        assert w.sensitivity == 3.0

    def test_frobenius_squared(self):
        assert Workload([[3.0, 4.0]]).frobenius_squared == pytest.approx(25.0)

    def test_is_low_rank(self):
        rng = np.random.default_rng(1)
        low = rng.standard_normal((6, 2)) @ rng.standard_normal((2, 8))
        assert Workload(low).is_low_rank()
        assert not Workload(np.eye(4)).is_low_rank()

    def test_row_access(self):
        w = Workload([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(w.row(1), [3.0, 4.0])

    def test_row_out_of_range(self):
        with pytest.raises(ValidationError):
            Workload(np.eye(2)).row(5)

    def test_equality(self):
        a = Workload(np.eye(2))
        b = Workload(np.eye(2))
        assert a == b
        assert hash(a) == hash(b)

    def test_hash_ignores_name_like_eq(self):
        # __eq__ compares content only; the hash contract requires equal
        # objects to hash equal, so the name must not enter the hash.
        a = Workload(np.eye(3))
        b = Workload(np.eye(3), name="other")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Workload(np.eye(2)) != Workload(np.ones((2, 2)))

    def test_subset(self):
        w = Workload(np.arange(6.0).reshape(3, 2))
        sub = w.subset([0, 2])
        assert sub.shape == (2, 2)
        assert np.allclose(sub.matrix[1], [4.0, 5.0])

    def test_subset_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Workload(np.eye(2)).subset([3])

    def test_stack(self):
        stacked = Workload(np.eye(2)).stack(Workload(np.ones((1, 2))))
        assert stacked.shape == (3, 2)

    def test_stack_domain_mismatch(self):
        with pytest.raises(ValidationError):
            Workload(np.eye(2)).stack(Workload(np.eye(3)))

    def test_repr(self):
        assert "shape=(2, 2)" in repr(Workload(np.eye(2), name="demo"))

    def test_content_digest_stable_and_memoized(self):
        a = Workload(np.eye(3))
        b = Workload(np.eye(3), name="other-name")
        # Content-only: the name is provenance, not content.
        assert a.content_digest == b.content_digest
        assert a.content_digest is a.content_digest  # memoized string
        # sha1 hex digest, stable across processes (unlike builtin hash).
        assert len(a.content_digest) == 40
        int(a.content_digest, 16)

    def test_content_digest_distinguishes_matrices(self):
        assert (
            Workload(np.eye(2)).content_digest
            != Workload(np.ones((2, 2))).content_digest
        )
        # Same bytes, different shape must not collide.
        flat = np.arange(4.0)
        assert (
            Workload(flat.reshape(1, 4)).content_digest
            != Workload(flat.reshape(2, 2)).content_digest
        )

    def test_thin_svd_cached_and_consistent(self):
        rng = np.random.default_rng(0)
        w = Workload(rng.standard_normal((5, 8)))
        assert w.cached_thin_svd is None
        u, sigma, vt = w.thin_svd
        assert w.cached_thin_svd is not None
        assert np.allclose((u * sigma) @ vt, w.matrix, atol=1e-10)
        # The spectral properties reuse the same factorisation.
        assert np.array_equal(w.singular_values, sigma)
        assert w.rank == 5
        # Factors are read-only views of the cache.
        with pytest.raises(ValueError):
            u[0, 0] = 1.0


class TestWDiscrete:
    def test_shape(self):
        assert wdiscrete(5, 9, seed=0).shape == (5, 9)

    def test_entries_are_plus_minus_one(self):
        w = wdiscrete(10, 20, seed=0)
        assert set(np.unique(w.matrix)) <= {-1.0, 1.0}

    def test_probability_respected(self):
        w = wdiscrete(100, 200, p=0.02, seed=0)
        fraction_positive = np.mean(w.matrix == 1.0)
        assert fraction_positive == pytest.approx(0.02, abs=0.005)

    def test_p_one_gives_all_ones(self):
        assert np.all(wdiscrete(3, 3, p=1.0, seed=0).matrix == 1.0)

    def test_deterministic(self):
        assert wdiscrete(4, 4, seed=3) == wdiscrete(4, 4, seed=3)


class TestWRange:
    def test_shape_and_binary(self):
        w = wrange(8, 16, seed=0)
        assert w.shape == (8, 16)
        assert set(np.unique(w.matrix)) <= {0.0, 1.0}

    def test_rows_are_contiguous_ranges(self):
        w = wrange(50, 32, seed=1)
        for row in w.matrix:
            ones = np.flatnonzero(row)
            assert ones.size >= 1
            assert np.array_equal(ones, np.arange(ones[0], ones[-1] + 1))

    def test_deterministic(self):
        assert wrange(4, 8, seed=5) == wrange(4, 8, seed=5)


class TestWRelated:
    def test_shape(self):
        assert wrelated(6, 12, s=2, seed=0).shape == (6, 12)

    def test_rank_equals_s(self):
        w = wrelated(20, 40, s=4, seed=0)
        assert w.rank == 4

    def test_default_s(self):
        w = wrelated(10, 30, seed=0)
        assert w.metadata["s"] == 4  # 0.4 * min(10, 30)

    def test_s_cannot_exceed_min_dim(self):
        with pytest.raises(ValidationError):
            wrelated(4, 10, s=5)

    def test_deterministic(self):
        assert wrelated(4, 8, s=2, seed=9) == wrelated(4, 8, s=2, seed=9)


class TestSpecialWorkloads:
    def test_identity(self):
        w = identity_workload(4)
        assert np.array_equal(w.matrix, np.eye(4))
        assert w.sensitivity == 1.0

    def test_total(self):
        w = total_workload(5)
        assert w.shape == (1, 5)
        assert w.answer(np.arange(5.0))[0] == 10.0

    def test_prefix(self):
        w = prefix_workload(4)
        assert np.allclose(w.answer(np.ones(4)), [1.0, 2.0, 3.0, 4.0])
        assert w.sensitivity == 4.0  # first column appears in every prefix


class TestWorkloadByName:
    def test_all_kinds(self):
        for kind in WORKLOAD_KINDS:
            w = workload_by_name(kind, m=4, n=8, seed=0)
            assert w.shape == (4, 8)

    def test_case_insensitive(self):
        assert workload_by_name("wrange", m=3, n=6, seed=1).name == "WRange"

    def test_wrelated_s_forwarded(self):
        w = workload_by_name("WRelated", m=8, n=8, s=2, seed=0)
        assert w.rank == 2

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            workload_by_name("WMystery", m=2, n=2)
