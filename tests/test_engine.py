"""Unit tests for the query engine and mechanism selection.

These predate the plan/execute split and deliberately keep exercising the
deprecated ``answer_workload`` compatibility shim (plan-API coverage lives
in ``test_plan.py``), so its DeprecationWarning is silenced file-wide.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:PrivateQueryEngine.answer_workload is deprecated:DeprecationWarning"
)

from repro.engine.query_engine import PrivateQueryEngine, Release
from repro.engine.selection import (
    DEFAULT_CANDIDATES,
    MechanismChoice,
    rank_mechanisms,
    select_mechanism,
)
from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import wrange, wrelated

FAST_LRM = {"LRM": {"max_outer": 15, "max_inner": 3, "nesterov_iters": 15, "stall_iters": 5}}


class TestSelection:
    def test_rank_returns_all_candidates(self):
        wl = wrange(6, 32, seed=0)
        choices = rank_mechanisms(wl, 0.1, candidates=("LM", "WM", "HM"))
        assert [c.label for c in choices if c.ok]
        assert len(choices) == 3

    def test_ranked_ascending(self):
        wl = wrange(6, 32, seed=0)
        choices = rank_mechanisms(wl, 0.1, candidates=("LM", "WM", "HM"))
        errors = [c.expected_error for c in choices if c.ok]
        assert errors == sorted(errors)

    def test_failures_sort_last(self):
        wl = wrange(6, 32, seed=0)
        choices = rank_mechanisms(wl, 0.1, candidates=("NOPE", "LM"))
        assert choices[0].label == "LM"
        assert not choices[-1].ok

    def test_select_returns_fitted_best(self):
        wl = wrelated(8, 64, s=2, seed=1)
        mech = select_mechanism(wl, 0.1, candidates=("LM", "LRM"), mechanism_kwargs=FAST_LRM)
        assert mech.is_fitted
        # low-rank workload: LRM should win the selection
        assert mech.name == "LRM"

    def test_select_lm_wins_on_identity(self):
        from repro.workloads import identity_workload

        wl = identity_workload(16)
        mech = select_mechanism(wl, 0.1, candidates=("LM", "WM", "HM"))
        assert mech.name == "LM"

    def test_select_all_fail_raises(self):
        wl = wrange(4, 8, seed=0)
        with pytest.raises(ValidationError, match="no usable mechanism"):
            select_mechanism(wl, 0.1, candidates=("NOPE",))

    def test_accepts_instances(self):
        wl = wrange(4, 8, seed=0)
        mech = select_mechanism(wl, 0.1, candidates=(NoiseOnDataMechanism(),))
        assert isinstance(mech, NoiseOnDataMechanism)

    def test_choice_repr(self):
        assert "failed" in repr(MechanismChoice("X", failure="boom"))

    def test_default_candidates_constant(self):
        assert "LRM" in DEFAULT_CANDIDATES and "LM" in DEFAULT_CANDIDATES


class TestPrivateQueryEngine:
    def _engine(self, budget=1.0):
        return PrivateQueryEngine(
            np.arange(64.0),
            total_budget=budget,
            mechanism_kwargs=FAST_LRM,
            seed=0,
        )

    def test_answer_shape_and_budget(self):
        engine = self._engine()
        release = engine.answer_workload(wrange(6, 64, seed=0), epsilon=0.25, mechanism="LM")
        assert isinstance(release, Release)
        assert release.answers.shape == (6,)
        assert engine.remaining_budget == pytest.approx(0.75)
        assert engine.spent_budget == pytest.approx(0.25)

    def test_budget_exhaustion(self):
        engine = self._engine(budget=0.3)
        engine.answer_workload(wrange(4, 64, seed=0), epsilon=0.2, mechanism="LM")
        with pytest.raises(PrivacyBudgetError):
            engine.answer_workload(wrange(4, 64, seed=1), epsilon=0.2, mechanism="LM")

    def test_can_answer(self):
        engine = self._engine(budget=0.3)
        assert engine.can_answer(0.3)
        assert not engine.can_answer(0.31)

    def test_workload_key_stable_and_digest_based(self):
        engine = self._engine()
        wl = wrange(6, 64, seed=0)
        key = engine._workload_key(wl)
        # Shape prefix + the workload's memoized sha1 digest: deterministic
        # across engines and processes (the builtin hash is salted per run).
        assert key == f"6x64:{wl.content_digest}"
        assert engine._workload_key(wl) == key
        other = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=9)
        assert other._workload_key(wrange(6, 64, seed=0)) == key

    def test_release_workload_key_matches_prepare_cache(self):
        engine = self._engine()
        wl = wrange(6, 64, seed=0)
        release = engine.answer_workload(wl, epsilon=0.25, mechanism="LM")
        assert release.workload_key == engine._workload_key(wl)

    def test_auto_selection_on_low_rank(self):
        engine = self._engine()
        release = engine.answer_workload(wrelated(8, 64, s=2, seed=1), epsilon=0.25)
        assert release.mechanism == "LRM"

    def test_mechanism_cache_reused(self):
        engine = self._engine()
        workload = wrelated(8, 64, s=2, seed=1)
        first = engine.prepare(workload, mechanism="LRM")
        second = engine.prepare(workload, mechanism="LRM")
        assert first is second

    def test_prepare_consumes_no_budget(self):
        engine = self._engine()
        engine.prepare(wrange(4, 64, seed=0), mechanism="LM")
        assert engine.spent_budget == 0.0

    def test_domain_mismatch_rejected(self):
        engine = self._engine()
        with pytest.raises(ValidationError, match="domain"):
            engine.answer_workload(wrange(4, 32, seed=0), epsilon=0.1)

    def test_postprocessing_flags(self):
        engine = self._engine()
        release = engine.answer_workload(
            wrange(6, 64, seed=0),
            epsilon=0.5,
            mechanism="LM",
            non_negative=True,
            integral=True,
        )
        assert np.all(release.answers >= 0)
        assert np.allclose(release.answers, np.round(release.answers))

    def test_release_log(self):
        engine = self._engine()
        engine.answer_workload(wrange(4, 64, seed=0), epsilon=0.1, mechanism="LM")
        engine.answer_workload(wrange(4, 64, seed=1), epsilon=0.1, mechanism="WM")
        log = engine.releases
        assert len(log) == 2
        assert log[0].mechanism == "LM"
        assert log[1].mechanism == "WM"

    def test_answer_queries_single_row(self):
        engine = self._engine()
        release = engine.answer_queries(np.ones(64), epsilon=0.1, mechanism="LM")
        assert release.answers.shape == (1,)

    def test_expected_error_recorded(self):
        engine = self._engine()
        release = engine.answer_workload(wrange(4, 64, seed=0), epsilon=0.5, mechanism="LM")
        mech = NoiseOnDataMechanism().fit(wrange(4, 64, seed=0))
        assert release.expected_error == pytest.approx(mech.expected_squared_error(0.5))

    def test_reproducible_with_seed(self):
        a = self._engine().answer_workload(wrange(4, 64, seed=0), epsilon=0.5, mechanism="LM")
        b = self._engine().answer_workload(wrange(4, 64, seed=0), epsilon=0.5, mechanism="LM")
        assert np.allclose(a.answers, b.answers)
