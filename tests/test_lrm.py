"""Unit tests for the Low-Rank Mechanism."""

import numpy as np
import pytest

from repro.core.lrm import LowRankMechanism
from repro.exceptions import NotFittedError, ValidationError
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import wrange, wrelated


class TestLowRankMechanism:
    def test_answer_shape(self, small_related, fast_lrm_kwargs):
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(small_related)
        x = np.ones(small_related.domain_size)
        assert mech.answer(x, 1.0, rng=0).shape == (small_related.num_queries,)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LowRankMechanism().answer(np.ones(4), 1.0)

    def test_unfitted_decomposition_raises(self):
        with pytest.raises(NotFittedError):
            _ = LowRankMechanism().decomposition

    def test_effective_rank(self, small_related, fast_lrm_kwargs):
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(small_related)
        # default ratio 1.2 over rank 3 -> 4
        assert mech.effective_rank == 4

    def test_explicit_rank(self, small_related, fast_lrm_kwargs):
        mech = LowRankMechanism(rank=6, **fast_lrm_kwargs).fit(small_related)
        assert mech.effective_rank == 6

    def test_unbiased(self, fast_lrm_kwargs):
        wl = wrelated(m=8, n=32, s=2, seed=0)
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(wl)
        x = np.arange(32.0)
        rng = np.random.default_rng(1)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        exact = wl.answer(x)
        tolerance = 0.05 * np.abs(exact).max() + 3
        assert np.allclose(mean_answer, exact, atol=tolerance)

    def test_empirical_matches_analytic(self, fast_lrm_kwargs):
        wl = wrelated(m=8, n=32, s=2, seed=0)
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(wl)
        x = np.ones(32) * 10
        empirical = mech.empirical_squared_error(x, 1.0, trials=2000, rng=2)
        analytic = mech.expected_squared_error(1.0, x=x)
        assert empirical == pytest.approx(analytic, rel=0.15)

    def test_beats_nod_on_low_rank(self, fast_lrm_kwargs):
        wl = wrelated(m=16, n=256, s=3, seed=1)
        lrm = LowRankMechanism(**fast_lrm_kwargs).fit(wl)
        nod = NoiseOnDataMechanism().fit(wl)
        assert lrm.expected_squared_error(0.1) < nod.expected_squared_error(0.1)

    def test_structural_error_term(self, fast_lrm_kwargs):
        wl = wrange(m=12, n=32, seed=2)
        mech = LowRankMechanism(rank=3, **fast_lrm_kwargs).fit(wl)  # rank too low
        x = np.ones(32) * 100
        with_structural = mech.expected_squared_error(1.0, x=x)
        noise_only = mech.expected_squared_error(1.0)
        assert with_structural > noise_only

    def test_error_quadratic_in_inverse_epsilon(self, small_related, fast_lrm_kwargs):
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(small_related)
        assert mech.expected_squared_error(0.1) == pytest.approx(
            100 * mech.expected_squared_error(1.0)
        )

    def test_upper_bound_holds(self, small_related, fast_lrm_kwargs):
        # Lemma 3: the fitted decomposition cannot exceed the SVD bound
        # by a meaningful factor (allow slack for the relaxation).
        mech = LowRankMechanism(**fast_lrm_kwargs).fit(small_related)
        assert mech.expected_squared_error(1.0) <= 2.5 * mech.theoretical_upper_bound(1.0)

    def test_deterministic_given_seeds(self, small_related, fast_lrm_kwargs):
        a = LowRankMechanism(seed=3, **fast_lrm_kwargs).fit(small_related)
        b = LowRankMechanism(seed=3, **fast_lrm_kwargs).fit(small_related)
        x = np.ones(small_related.domain_size)
        assert np.allclose(a.answer(x, 1.0, rng=5), b.answer(x, 1.0, rng=5))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            LowRankMechanism(rank=0)
        with pytest.raises(ValidationError):
            LowRankMechanism(gamma=-1.0)
        with pytest.raises(ValidationError):
            LowRankMechanism(rank_ratio=0.0)

    def test_name(self):
        assert LowRankMechanism.name == "LRM"
