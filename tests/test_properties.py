"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

# Numerical projections occasionally exceed hypothesis's default 200 ms
# deadline on loaded CI machines; the properties themselves are exact.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

from repro.core.nesterov import quadratic_l_subproblem
from repro.linalg.haar import haar_analysis, haar_synthesis
from repro.linalg.projection import project_columns_l1, project_l1_ball, project_simplex
from repro.linalg.trees import tree_apply, tree_apply_transpose, tree_consistency, tree_matrix
from repro.privacy.sensitivity import l1_sensitivity, scale_to_sensitivity

# Tiny magnitudes (e.g. 1e-160) square into subnormals, where the
# relative-tolerance identities under test (Lemma 2 invariance, linear
# sensitivity scaling) cannot hold to 1 ulp — an artefact of float
# underflow, not of the code under test. Snap them to exact zero, which
# the properties do have to handle.
_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
).map(lambda x: 0.0 if abs(x) < 1e-100 else x)


def _vector(min_size=1, max_size=32):
    return arrays(np.float64, st.integers(min_size, max_size), elements=_floats)


def _matrix(max_rows=8, max_cols=8):
    return arrays(
        np.float64,
        st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)),
        elements=_floats,
    )


class TestProjectionProperties:
    @given(_vector())
    @settings(max_examples=50)
    def test_l1_projection_feasible(self, v):
        assert np.abs(project_l1_ball(v)).sum() <= 1 + 1e-8

    @given(_vector())
    @settings(max_examples=50)
    def test_l1_projection_idempotent(self, v):
        once = project_l1_ball(v)
        assert np.allclose(project_l1_ball(once), once, atol=1e-9)

    @given(_vector())
    @settings(max_examples=50)
    def test_l1_projection_never_increases_norm(self, v):
        assert np.abs(project_l1_ball(v)).sum() <= np.abs(v).sum() + 1e-9

    @given(_vector())
    @settings(max_examples=50)
    def test_simplex_projection_on_simplex(self, v):
        w = project_simplex(v)
        assert np.all(w >= 0)
        np.testing.assert_allclose(w.sum(), 1.0, rtol=1e-7)

    @given(_matrix())
    @settings(max_examples=50)
    def test_column_projection_feasible(self, m):
        result = project_columns_l1(m)
        assert np.all(np.abs(result).sum(axis=0) <= 1 + 1e-8)

    @given(_matrix())
    @settings(max_examples=50)
    def test_column_projection_shrinks_toward_input(self, m):
        # Projection never moves farther than the origin would.
        result = project_columns_l1(m)
        assert np.linalg.norm(result - m) <= np.linalg.norm(m) + 1e-9


class TestHaarProperties:
    @given(st.integers(0, 6), st.integers(0, 2**16))
    @settings(max_examples=40)
    def test_round_trip_any_power_of_two(self, log_n, seed):
        n = 2**log_n
        x = np.random.default_rng(seed).standard_normal(n)
        assert np.allclose(haar_synthesis(haar_analysis(x)), x, atol=1e-9)

    @given(st.integers(1, 5), st.integers(0, 2**16))
    @settings(max_examples=40)
    def test_parseval_like_energy_bound(self, log_n, seed):
        # The unnormalised transform is invertible; energy is controlled
        # within the frame bounds (no zero vector maps to zero).
        n = 2**log_n
        x = np.random.default_rng(seed).standard_normal(n)
        coefficients = haar_analysis(x)
        if np.linalg.norm(x) > 1e-9:
            assert np.linalg.norm(coefficients) > 0


class TestTreeProperties:
    @given(st.integers(1, 5), st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_adjoint_identity(self, log_n, seed):
        n = 2**log_n
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        y = rng.standard_normal(2 * n - 1)
        lhs = np.dot(tree_apply(x), y)
        rhs = np.dot(x, tree_apply_transpose(y))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)

    @given(st.integers(1, 4), st.integers(0, 2**16))
    @settings(max_examples=20)
    def test_consistency_is_least_squares(self, log_n, seed):
        n = 2**log_n
        noisy = np.random.default_rng(seed).standard_normal(2 * n - 1)
        dense = tree_matrix(n, sparse=False)
        expected = np.linalg.pinv(dense) @ noisy
        np.testing.assert_allclose(tree_consistency(noisy), expected, atol=1e-8)

    @given(st.integers(1, 5), st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_consistency_exact_on_clean_input(self, log_n, seed):
        n = 2**log_n
        x = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(tree_consistency(tree_apply(x)), x, atol=1e-9)


class TestSensitivityProperties:
    @given(_matrix())
    @settings(max_examples=50)
    def test_sensitivity_non_negative(self, m):
        assert l1_sensitivity(m) >= 0

    @given(_matrix(), st.floats(0.1, 10.0))
    @settings(max_examples=50)
    def test_sensitivity_scales_linearly(self, m, c):
        np.testing.assert_allclose(l1_sensitivity(c * m), c * l1_sensitivity(m), rtol=1e-9)

    @given(
        arrays(np.float64, (3, 2), elements=_floats),
        arrays(np.float64, (2, 4), elements=_floats),
    )
    @settings(max_examples=50)
    def test_lemma2_invariance(self, b, l):
        # Phi * Delta^2 invariant under the rescaling, when L is non-zero.
        if l1_sensitivity(l) <= 1e-9:
            return
        before = np.sum(b**2) * l1_sensitivity(l) ** 2
        b2, l2 = scale_to_sensitivity(b, l)
        after = np.sum(b2**2) * l1_sensitivity(l2) ** 2
        np.testing.assert_allclose(after, before, rtol=1e-7)


class TestSubproblemProperties:
    @given(st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_gradient_consistent_with_objective(self, seed):
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((4, 2))
        w = rng.standard_normal((4, 5))
        pi = rng.standard_normal((4, 5))
        objective, gradient = quadratic_l_subproblem(b, w, pi, 2.0)
        l = rng.standard_normal((2, 5)) * 0.2
        direction = rng.standard_normal((2, 5))
        direction /= np.linalg.norm(direction)
        step = 1e-6
        numeric = (objective(l + step * direction) - objective(l - step * direction)) / (2 * step)
        analytic = float(np.sum(gradient(l) * direction))
        np.testing.assert_allclose(numeric, analytic, rtol=1e-3, atol=1e-5)
