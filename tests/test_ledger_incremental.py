"""Incremental ledger sync + checkpoint compaction (PR 7 satellite).

The load-bearing claims:

* a warm handle's sync is **O(new records)** — the store-level
  ``scan_new`` resumes from a verified tail cursor instead of re-reading
  the stream — yet the mirrored state stays **bit-identical** to a cold
  full replay after every operation (spends, batches, rollbacks, resets,
  cross-handle interleavings);
* the cursor is a hint, never an assumption: compaction or truncation by
  another process fails its verification and forces a full rescan;
* checkpoint **compaction** (``compact_every``) bounds the stream to the
  live transactions without perturbing the replayed state, and a
  checkpoint failure never fails the spend that triggered it;
* after an ambiguous write failure the handle marks itself dirty and the
  next sync re-verifies the stream end to end, so a durable-but-
  rolled-back-in-memory commit is recovered, not silently skipped.
"""

import numpy as np
import pytest

from repro.exceptions import LedgerError, PrivacyBudgetError
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import inspect_ledger, open_ledger, open_store
from repro.testing.faults import FailPoint, InjectedFault

BACKENDS = ("journal", "sqlite")

MODELS = {
    "pure": dict(total=4.0, total_delta=0.0, costs=[(0.1, 0.0), (0.25, 0.0), (0.05, 0.0)]),
    "basic": dict(total=4.0, total_delta=1e-5, costs=[(0.1, 1e-7), (0.25, 2e-7), (0.05, 0.0)]),
    "rdp": dict(total=4.0, total_delta=1e-5, costs=[(0.1, 1e-7), (0.25, 1e-7), (0.05, 1e-7)]),
}


def ledger_path(tmp_path, backend):
    return tmp_path / ("budget.db" if backend == "sqlite" else "budget.journal")


def fresh_accountant(model="basic"):
    spec = MODELS[model]
    return make_accountant(spec["total"], spec["total_delta"], model=model)


def states_equal(left, right):
    if type(left) is not type(right):
        return False
    if isinstance(left, tuple):
        return len(left) == len(right) and all(
            states_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, np.ndarray):
        return left.dtype == right.dtype and np.array_equal(left, right)
    return left == right


def cold_replay_state(path, model="basic"):
    """The state a restarted process rebuilds by full replay."""
    acct = open_ledger(path, fresh_accountant(model))
    try:
        return acct._ledger_state()
    finally:
        acct.close()


def assert_matches_cold_replay(acct, path, model="basic"):
    assert states_equal(acct._ledger_state(), cold_replay_state(path, model))


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FailPoint.clear()
    yield
    FailPoint.clear()


# ---------------------------------------------------------------------- #
# Store-level scan_new
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestScanNew:
    def test_resumes_after_full_scan(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        writer = open_ledger(path, fresh_accountant())
        writer.spend(0.1)
        reader = open_store(path, backend=backend)
        records, _, resumed = reader.scan_new()
        assert not resumed  # cold: no cursor yet
        assert [r["op"] for r in records] == ["meta", "intent", "commit"]
        records, _, resumed = reader.scan_new()
        assert resumed and records == []
        writer.spend(0.2)
        records, _, resumed = reader.scan_new()
        assert resumed
        assert [r["op"] for r in records] == ["intent", "commit"]
        writer.close()
        reader.close()

    def test_prefix_preserving_compaction_resumes(self, tmp_path, backend):
        """A checkpoint that only drops records *after* the cursor leaves
        the prefix byte-identical (same payloads, same seq, same crc), so
        resuming from the verified cursor is still exact."""
        path = ledger_path(tmp_path, backend)
        writer = open_ledger(path, fresh_accountant())
        for _ in range(4):
            writer.spend(0.1)
        reader = open_store(path, backend=backend)
        reader.scan_new()  # establish the cursor at the tail
        compactor = open_ledger(path, fresh_accountant(), compact_every=1)
        compactor.spend(0.1)
        compactor.close()
        records, _, resumed = reader.scan_new()
        assert resumed  # prefix unchanged: the cursor verified
        assert [r["op"] for r in records] == ["intent", "commit"]
        writer.close()
        reader.close()

    def test_rewrite_under_cursor_forces_full_rescan(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        writer = open_ledger(path, fresh_accountant())
        writer.spend(0.1)
        snap = writer.snapshot()
        for _ in range(3):
            writer.spend(0.1)
        reader = open_store(path, backend=backend)
        reader.scan_new()  # cursor at the last pre-rollback commit
        # The rollback excises the record under the cursor, and the next
        # checkpoint physically rewrites the stream without it: the
        # cursor's verification must fail and force a full rescan.
        writer.restore(snap)
        compactor = open_ledger(path, fresh_accountant(), compact_every=1)
        compactor.spend(0.05)
        compactor.close()
        records, _, resumed = reader.scan_new()
        assert not resumed  # cursor failed verification -> full stream
        assert records[0]["op"] == "meta"
        assert sum(1 for r in records if r["op"] == "commit") == 2
        writer.close()
        reader.close()

    def test_replaced_file_forces_full_rescan(self, tmp_path, backend):
        if backend == "sqlite":
            pytest.skip(
                "deleting a sqlite db under an open connection keeps the "
                "old inode visible — operator error, not a sync path"
            )
        path = ledger_path(tmp_path, backend)
        writer = open_ledger(path, fresh_accountant())
        writer.spend(0.1)
        reader = open_store(path, backend=backend)
        reader.scan_new()
        writer.close()
        path.unlink()  # losing the file outright must cold-start
        fresh = open_ledger(path, fresh_accountant())
        fresh.spend(0.3)
        fresh.close()
        records, _, resumed = reader.scan_new()
        assert not resumed
        assert [r["op"] for r in records] == ["meta", "intent", "commit"]
        reader.close()


# ---------------------------------------------------------------------- #
# Warm-handle sync == cold full replay, bit for bit
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("model", sorted(MODELS))
class TestBitIdentity:
    def test_spend_stream(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        for eps, delta in MODELS[model]["costs"]:
            acct.spend(eps, delta)
        acct.spend_many(MODELS[model]["costs"])
        assert_matches_cold_replay(acct, path, model)
        acct.close()

    def test_rollback_and_reset(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(model))
        acct.spend(*MODELS[model]["costs"][0])
        snap = acct.snapshot()
        acct.spend_many(MODELS[model]["costs"])
        acct.restore(snap)
        assert_matches_cold_replay(acct, path, model)
        acct.spend(*MODELS[model]["costs"][1])
        assert_matches_cold_replay(acct, path, model)
        acct.reset()
        assert_matches_cold_replay(acct, path, model)
        acct.close()

    def test_two_warm_handles_interleaved(self, tmp_path, backend, model):
        path = ledger_path(tmp_path, backend)
        a = open_ledger(path, fresh_accountant(model))
        b = open_ledger(path, fresh_accountant(model))
        costs = MODELS[model]["costs"]
        for i, (eps, delta) in enumerate(costs * 2):
            (a if i % 2 == 0 else b).spend(eps, delta)
        a.sync()
        b.sync()
        assert states_equal(a._ledger_state(), b._ledger_state())
        assert_matches_cold_replay(a, path, model)
        a.close()
        b.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestIncrementalNotReplay:
    def test_warm_sync_consumes_only_new_records(self, tmp_path, backend):
        """The whole point: a warm handle's sync must resume, not replay."""
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant())
        other = open_ledger(path, fresh_accountant())
        for _ in range(10):
            other.spend(0.05)
        seen = []
        original = acct._store.scan_new

        def spying_scan_new():
            result = original()
            seen.append((len(result[0]), result[2]))
            return result

        acct._store.scan_new = spying_scan_new
        acct.spend(0.1)
        acct._store.scan_new = original
        # One sync, resumed, exactly the 20 interim records — not the 23
        # a full replay would re-read.
        assert seen == [(20, True)]
        assert_matches_cold_replay(acct, path)
        acct.close()
        other.close()

    def test_exact_exhaustion_through_warm_handle(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant())
        other = open_ledger(path, fresh_accountant())
        total = MODELS["basic"]["total"]
        for _ in range(7):
            other.spend(total / 8)
        acct.spend(total / 8)  # the warm handle lands the exact last nickel
        assert acct.remaining_epsilon == 0.0
        with pytest.raises(PrivacyBudgetError):
            other.spend(total / 8)
        assert_matches_cold_replay(acct, path)
        acct.close()
        other.close()


# ---------------------------------------------------------------------- #
# Checkpoint compaction
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointCompaction:
    def test_bounds_stream_and_preserves_state(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant(), compact_every=6)
        snap = None
        for i in range(12):
            if i == 4:
                snap = acct.snapshot()
            acct.spend(0.05)
            if i == 7:
                acct.restore(snap)  # journals a rollback record
        # 12 spends; the snapshot predates spend 4, so the restore rolls
        # back spends 4-7 -> 8 live transactions. The stream holds at most
        # meta + intent/commit per live txn + the records appended since
        # the last checkpoint fired.
        info = inspect_ledger(path)
        assert info["committed"] == 8
        assert info["records"] <= 1 + 2 * 8 + 2
        assert info["rolled_back"] == 0  # compaction dropped the history
        assert_matches_cold_replay(acct, path)
        acct.close()

    def test_disabled_by_default(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        acct = open_ledger(path, fresh_accountant())
        for _ in range(10):
            acct.spend(0.05)
        assert inspect_ledger(path)["records"] == 1 + 2 * 10
        acct.close()

    def test_invalid_compact_every_raises(self, tmp_path, backend):
        path = ledger_path(tmp_path, backend)
        with pytest.raises(LedgerError, match="compact_every"):
            open_ledger(path, fresh_accountant(), compact_every=0)

    def test_checkpoint_survives_other_handles(self, tmp_path, backend):
        """A compaction must not lose spends other processes committed."""
        path = ledger_path(tmp_path, backend)
        compacting = open_ledger(path, fresh_accountant(), compact_every=4)
        plain = open_ledger(path, fresh_accountant())
        for _ in range(6):
            plain.spend(0.1)
            compacting.spend(0.05)
        compacting.sync()
        plain.sync()
        assert states_equal(compacting._ledger_state(), plain._ledger_state())
        assert_matches_cold_replay(compacting, path)
        assert inspect_ledger(path)["committed"] == 12
        compacting.close()
        plain.close()

class TestCheckpointFailure:
    def test_journal_checkpoint_failure_never_fails_the_spend(self, tmp_path):
        path = ledger_path(tmp_path, "journal")
        acct = open_ledger(path, fresh_accountant(), compact_every=4)
        for _ in range(2):
            acct.spend(0.05)
        FailPoint.error_at("journal.compact.before_replace")
        acct.spend(0.05)  # trips the threshold; checkpoint fails quietly
        FailPoint.clear()
        assert acct.spent_epsilon == pytest.approx(0.15)
        assert inspect_ledger(path)["committed"] == 3
        assert_matches_cold_replay(acct, path)
        acct.spend(0.05)  # next spend retries the checkpoint and succeeds
        assert inspect_ledger(path)["records"] == 1 + 2 * 4
        assert_matches_cold_replay(acct, path)
        acct.close()


# ---------------------------------------------------------------------- #
# Dirty-handle recovery (ambiguous write failures)
# ---------------------------------------------------------------------- #
class TestDirtyResync:
    def test_durable_commit_rolled_back_in_memory_is_recovered(self, tmp_path):
        """If the failure lands *after* both records hit the disk, the
        spend is durable even though the handle rolled it back in memory.
        The dirty flag must force the next sync to rediscover it —
        otherwise the handle undercounts and can overspend."""
        path = ledger_path(tmp_path, "journal")
        acct = open_ledger(path, fresh_accountant())
        acct.spend(0.25)
        FailPoint.error_at("ledger.commit.after_append")
        with pytest.raises(InjectedFault):
            acct.spend(0.5)
        FailPoint.clear()
        # In-memory: rolled back (the spend never returned).
        assert acct._inner.spent_epsilon == pytest.approx(0.25)
        # On disk: durable. The next sync must pick it up.
        acct.sync()
        assert acct.spent_epsilon == pytest.approx(0.75)
        assert_matches_cold_replay(acct, path)
        acct.close()

    def test_failed_append_leaves_handle_consistent(self, tmp_path):
        """Failure *before* anything is written: nothing durable, and the
        handle must keep serving with correct state."""
        path = ledger_path(tmp_path, "journal")
        acct = open_ledger(path, fresh_accountant())
        acct.spend(0.25)
        FailPoint.error_at("ledger.intent.before_append")
        with pytest.raises(InjectedFault):
            acct.spend(0.5)
        FailPoint.clear()
        acct.spend(0.1)
        assert acct.spent_epsilon == pytest.approx(0.35)
        assert_matches_cold_replay(acct, path)
        acct.close()
