"""Tests for the Rényi/zCDP accounting subsystem (repro.privacy.rdp)."""

import numpy as np
import pytest

from repro.engine import PrivateQueryEngine
from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.privacy.accountant import ApproxDPAccountant, make_accountant
from repro.privacy.noise import gaussian_sigma
from repro.privacy.rdp import (
    DEFAULT_ALPHA_GRID,
    RDPAccountant,
    compose_rdp_curves,
    gaussian_rdp_curve,
    laplace_rdp_curve,
    rdp_to_approx_dp,
    release_rdp_curve,
    releases_per_budget,
)
from repro.workloads import wrange


class TestCurves:
    def test_gaussian_curve_formula(self):
        curve = gaussian_rdp_curve(2.0)
        assert np.array_equal(curve, DEFAULT_ALPHA_GRID / 8.0)

    def test_gaussian_curve_custom_grid(self):
        alphas = np.array([2.0, 4.0])
        assert np.allclose(gaussian_rdp_curve(1.0, alphas), [1.0, 2.0])

    def test_laplace_curve_positive_increasing_and_capped_by_epsilon(self):
        # Mironov Prop. 6: increasing in alpha, converging to the pure-DP
        # epsilon 1/lambda from below.
        epsilon = 0.8
        curve = laplace_rdp_curve(1.0 / epsilon)
        assert np.all(curve > 0.0)
        assert np.all(np.diff(curve) >= 0.0)
        assert np.all(curve <= epsilon + 1e-12)
        big_alpha = laplace_rdp_curve(1.0 / epsilon, np.array([1e6]))[0]
        assert big_alpha == pytest.approx(epsilon, rel=1e-3)

    def test_laplace_curve_no_overflow_at_high_epsilon(self):
        curve = laplace_rdp_curve(1.0 / 1e5)  # eps = 1e5 per release
        assert np.all(np.isfinite(curve))
        assert curve[-1] <= 1e5 + 1e-6

    def test_curves_reject_bad_inputs(self):
        with pytest.raises(ValidationError):
            gaussian_rdp_curve(0.0)
        with pytest.raises(ValidationError):
            laplace_rdp_curve(-1.0)
        with pytest.raises(PrivacyBudgetError):
            gaussian_rdp_curve(1.0, np.array([0.5, 2.0]))  # order <= 1

    def test_composition_is_addition(self):
        a = gaussian_rdp_curve(1.0)
        b = laplace_rdp_curve(2.0)
        assert np.array_equal(compose_rdp_curves(a, b), a + b)
        with pytest.raises(PrivacyBudgetError):
            compose_rdp_curves()

    def test_kfold_gaussian_matches_closed_form(self):
        # k releases at sigma compose to exactly one release at sigma/sqrt(k):
        # k * alpha/(2 sigma^2) == alpha/(2 (sigma/sqrt(k))^2). The curve
        # arithmetic must reproduce the closed form bit-for-bit.
        sigma, k = 3.0, 16  # sqrt(16) exact in floats
        composed = compose_rdp_curves(*([gaussian_rdp_curve(sigma)] * k))
        closed_form = gaussian_rdp_curve(sigma / np.sqrt(k))
        assert np.allclose(composed, closed_form, rtol=1e-15)
        assert rdp_to_approx_dp(composed, 1e-6) == pytest.approx(
            rdp_to_approx_dp(closed_form, 1e-6), rel=1e-12
        )


class TestConversion:
    def test_decreasing_in_delta(self):
        curve = gaussian_rdp_curve(2.0)
        assert rdp_to_approx_dp(curve, 1e-9) > rdp_to_approx_dp(curve, 1e-3)

    def test_never_negative(self):
        assert rdp_to_approx_dp(np.zeros_like(DEFAULT_ALPHA_GRID), 0.5) == 0.0

    def test_single_gaussian_release_roundtrip_is_conservative(self):
        # Calibrate sigma for (eps0, delta), run it through the RDP curve
        # and convert back at the same delta: the result must upper-bound
        # the exact eps0 (RDP is not tight for one release) without being
        # wildly loose.
        eps0, delta = 0.5, 1e-6
        sigma = gaussian_sigma(1.0, eps0, delta)
        converted = rdp_to_approx_dp(gaussian_rdp_curve(sigma), delta)
        assert converted >= eps0
        assert converted <= 3.0 * eps0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            rdp_to_approx_dp(np.zeros(3), 1e-6)

    def test_delta_bounds(self):
        curve = gaussian_rdp_curve(1.0)
        with pytest.raises((PrivacyBudgetError, ValidationError)):
            rdp_to_approx_dp(curve, 0.0)
        with pytest.raises(PrivacyBudgetError):
            rdp_to_approx_dp(curve, 1.0)


class TestReleaseCurve:
    def test_pure_cost_is_laplace(self):
        assert np.array_equal(release_rdp_curve(0.4, 0.0), laplace_rdp_curve(2.5))

    def test_gaussian_cost_uses_analytic_sigma(self):
        eps, delta = 0.7, 1e-7
        expected = gaussian_rdp_curve(gaussian_sigma(1.0, eps, delta))
        assert np.array_equal(release_rdp_curve(eps, delta), expected)


class TestReleasesPerBudget:
    def test_pure_model(self):
        assert releases_per_budget(0.1, 0.0, 1.0, 0.0, model="pure") == 10
        assert releases_per_budget(0.1, 1e-8, 1.0, 0.0, model="pure") == 0

    def test_basic_model_minimum_of_both_coordinates(self):
        assert releases_per_budget(0.1, 1e-7, 10.0, 1e-6, model="basic") == 10
        assert releases_per_budget(0.1, 1e-8, 1.0, 1e-6, model="basic") == 10

    def test_rdp_beats_basic_for_many_gaussian_releases(self):
        basic = releases_per_budget(0.05, 1e-8, 2.0, 1e-5, model="basic")
        rdp = releases_per_budget(0.05, 1e-8, 2.0, 1e-5, model="rdp")
        assert rdp >= 5 * basic

    def test_rdp_count_matches_accountant_loop(self):
        # Within one release of a live drain (k*cost vs sequential curve
        # accumulation — documented); exact on this off-boundary cell.
        eps, delta, total_eps, total_delta = 0.5, 1e-8, 4.0, 1e-5
        accountant = RDPAccountant(total_eps, total_delta)
        count = 0
        while accountant.can_spend(eps, delta):
            accountant.spend(eps, delta)
            count += 1
        predicted = releases_per_budget(eps, delta, total_eps, total_delta, model="rdp")
        assert abs(count - predicted) <= 1
        assert count == predicted  # this cell sits away from any boundary

    def test_rdp_requires_delta_budget(self):
        with pytest.raises(PrivacyBudgetError):
            releases_per_budget(0.1, 1e-8, 1.0, 0.0, model="rdp")

    def test_unknown_model_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            releases_per_budget(0.1, 0.0, 1.0, 0.0, model="martingale")


class TestRDPAccountant:
    def test_initial_state(self):
        accountant = RDPAccountant(1.0, 1e-6)
        assert accountant.total_epsilon == 1.0
        assert accountant.total_delta == 1e-6
        assert accountant.spent_epsilon == 0.0
        assert accountant.spent_delta == 0.0
        assert accountant.remaining_epsilon == 1.0
        assert np.array_equal(accountant.rdp_curve, np.zeros(DEFAULT_ALPHA_GRID.shape))

    def test_requires_positive_total_delta(self):
        with pytest.raises(PrivacyBudgetError):
            RDPAccountant(1.0, 0.0)

    def test_spend_accumulates_sublinearly(self):
        # The realized epsilon grows with each spend but, past the first
        # release, far slower than the nominal sum — the whole point.
        accountant = RDPAccountant(10.0, 1e-6)
        realized = []
        for _ in range(20):
            accountant.spend(0.2, 1e-8)
            realized.append(accountant.spent_epsilon)
        assert np.all(np.diff(realized) > 0.0)
        assert realized[-1] < 20 * 0.2
        assert accountant.spent_delta == 1e-6  # conversion target, not a sum

    def test_pure_costs_compose_through_laplace_curve(self):
        accountant = RDPAccountant(5.0, 1e-6)
        accountant.spend(0.3)
        assert np.array_equal(accountant.rdp_curve, laplace_rdp_curve(1.0 / 0.3))

    def test_many_small_pure_releases_beat_sequential_composition(self):
        # The Laplace curve composes sub-linearly too; the win appears once
        # per-release epsilons are small relative to the budget.
        pure = releases_per_budget(0.01, 0.0, 1.0, 1e-6, model="pure")
        rdp = releases_per_budget(0.01, 0.0, 1.0, 1e-6, model="rdp")
        assert pure == 100
        assert rdp >= 4 * pure

    def test_overspend_raises_and_leaves_state(self):
        accountant = RDPAccountant(0.5, 1e-6)
        accountant.spend(0.3, 1e-8)
        curve_before = accountant.rdp_curve
        spent_before = accountant.spent_epsilon
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.5, 1e-8)
        assert accountant.rdp_curve is curve_before
        assert accountant.spent_epsilon == spent_before

    def test_dust_releases_cannot_leak_unbounded(self):
        # Every spend strictly grows the realized epsilon (the curve only
        # adds), so dust-sized releases are refused in finite time and the
        # ledger never under-reports past the total.
        accountant = RDPAccountant(0.05, 1e-6)
        count = 0
        while accountant.can_spend(0.005, 1e-9) and count < 10_000:
            accountant.spend(0.005, 1e-9)
            count += 1
        assert 0 < count < 10_000
        assert accountant.spent_epsilon <= 0.05 + 1e-10
        with pytest.raises(PrivacyBudgetError):
            accountant.spend(0.005, 1e-9)

    def test_slack_admitted_final_spend_never_reads_above_total(self):
        # Regression: admission tolerates boundary dust (realized <= total
        # + eps_slack), so the final spend's conversion can land a hair
        # above the total — the report must clamp to the total (the scalar
        # accountants' sign-aware clamp, RDP edition), never read above it.
        eps, delta, total_delta = 0.05, 1e-8, 1e-5
        probe = RDPAccountant(1e9, total_delta)
        for _ in range(200):
            probe.spend(eps, delta)
        boundary = probe.spent_epsilon
        # Total strictly below the 200-fold realized epsilon, inside the
        # admission slack: spend 200 is admitted and overshoots in raw
        # conversion terms.
        total = boundary - 0.5e-12 * max(1.0, boundary)
        accountant = RDPAccountant(total, total_delta)
        count = 0
        while accountant.can_spend(eps, delta):
            accountant.spend(eps, delta)
            count += 1
        assert count == 200
        assert accountant.spent_epsilon <= accountant.total_epsilon
        assert accountant.spent_epsilon == accountant.total_epsilon
        assert accountant.remaining_epsilon == 0.0
        assert not accountant.can_spend(eps, delta)

    def test_no_rearm_once_realized_reaches_total(self):
        # A ledger whose realized guarantee has reached the total refuses
        # every further cost, however tiny (mirrors the scalar
        # accountants' exhaustion guard). Saturation is constructed via
        # restore — discrete spends land *near* the boundary, not on it.
        accountant = RDPAccountant(0.4, 1e-6)
        saturated_curve = np.full(DEFAULT_ALPHA_GRID.shape, 50.0)
        accountant.restore((saturated_curve, True))
        assert accountant.remaining_epsilon == 0.0
        for _ in range(3):
            with pytest.raises(PrivacyBudgetError):
                accountant.spend(1e-9)
        assert not accountant.can_spend(1e-9)

    def test_can_spend_is_a_total_predicate(self):
        accountant = RDPAccountant(1.0, 1e-6)
        assert accountant.can_spend(0.1, 1e-8)
        assert accountant.can_spend(0.1)  # pure cost fine
        assert not accountant.can_spend(0.0)
        assert not accountant.can_spend(-1.0)
        assert not accountant.can_spend(0.1, delta=-0.1)
        assert not accountant.can_spend(0.1, delta=1.0)

    def test_per_release_delta_above_budget_target_is_legal(self):
        # Under RDP the per-release delta calibrates sigma; it is not a
        # draw against total_delta.
        accountant = RDPAccountant(10.0, 1e-8)
        accountant.spend(0.1, 1e-6)
        assert accountant.spent_delta == 1e-8

    def test_snapshot_restore_roundtrip(self):
        accountant = RDPAccountant(2.0, 1e-6)
        accountant.spend(0.2, 1e-8)
        snap = accountant.snapshot()
        spent_at_snap = accountant.spent_epsilon
        accountant.spend(0.2, 1e-8)
        accountant.spend(0.4)
        accountant.restore(snap)
        assert accountant.spent_epsilon == spent_at_snap
        assert np.array_equal(accountant.rdp_curve, snap[0])
        # The restored ledger keeps spending normally.
        accountant.spend(0.2, 1e-8)

    def test_snapshot_is_immune_to_later_spends(self):
        accountant = RDPAccountant(2.0, 1e-6)
        accountant.spend(0.2, 1e-8)
        snap = accountant.snapshot()
        curve_copy = np.array(snap[0], copy=True)
        accountant.spend(0.5)
        assert np.array_equal(snap[0], curve_copy)

    def test_reset(self):
        accountant = RDPAccountant(1.0, 1e-6)
        accountant.spend(0.3, 1e-8)
        accountant.reset()
        assert accountant.spent_epsilon == 0.0
        assert accountant.spent_delta == 0.0
        assert np.array_equal(accountant.rdp_curve, np.zeros(DEFAULT_ALPHA_GRID.shape))

    def test_repr(self):
        assert "RDPAccountant" in repr(RDPAccountant(1.0, 1e-6))


class TestRDPSpendMany:
    COSTS = [(0.2, 1e-8)] * 4 + [(0.1, 0.0)] * 3 + [(0.3, 1e-7)]

    def test_batch_bit_identical_to_loop(self):
        batch = RDPAccountant(10.0, 1e-6)
        realized = []
        batch.spend_many(self.COSTS, realized_out=realized)
        loop = RDPAccountant(10.0, 1e-6)
        loop_realized = []
        for cost in self.COSTS:
            loop.spend(*cost)
            loop_realized.append((loop.spent_epsilon, loop.spent_delta))
        assert np.array_equal(batch.rdp_curve, loop.rdp_curve)
        assert batch.spent_epsilon == loop.spent_epsilon
        assert realized == loop_realized

    def test_all_or_nothing(self):
        accountant = RDPAccountant(1.0, 1e-6)
        accountant.spend(0.2, 1e-8)
        curve_before = accountant.rdp_curve
        with pytest.raises(PrivacyBudgetError, match="batch of"):
            accountant.spend_many([(0.3, 1e-8)] * 200)
        assert accountant.rdp_curve is curve_before

    def test_batch_admits_exactly_what_the_loop_would(self):
        eps, delta, total = 0.5, 1e-8, 4.0
        loop = RDPAccountant(total, 1e-5)
        count = 0
        while loop.can_spend(eps, delta):
            loop.spend(eps, delta)
            count += 1
        batch = RDPAccountant(total, 1e-5)
        batch.spend_many([(eps, delta)] * count)
        assert batch.spent_epsilon == loop.spent_epsilon
        fresh = RDPAccountant(total, 1e-5)
        with pytest.raises(PrivacyBudgetError):
            fresh.spend_many([(eps, delta)] * (count + 1))
        assert fresh.spent_epsilon == 0.0

    def test_empty_batch_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            RDPAccountant(1.0, 1e-6).spend_many([])


class TestMakeAccountantModels:
    def test_rdp_model(self):
        accountant = make_accountant(1.0, 1e-6, model="rdp")
        assert isinstance(accountant, RDPAccountant)
        assert accountant.name == "rdp"

    def test_aliases(self):
        assert isinstance(make_accountant(1.0, 1e-6, model="zcdp"), RDPAccountant)
        assert isinstance(make_accountant(1.0, 1e-6, model="approx"), ApproxDPAccountant)

    def test_rdp_requires_delta(self):
        with pytest.raises(PrivacyBudgetError):
            make_accountant(1.0, 0.0, model="rdp")

    def test_pure_model_rejects_delta(self):
        with pytest.raises(PrivacyBudgetError):
            make_accountant(1.0, 1e-6, model="pure")

    def test_unknown_model(self):
        with pytest.raises(PrivacyBudgetError, match="unknown accountant model"):
            make_accountant(1.0, 1e-6, model="quantum")


class TestEngineIntegration:
    def _engines(self, model):
        data = np.arange(64.0)
        kwargs = dict(
            total_budget=1.0, delta=1e-6, seed=3,
            mechanism_kwargs={"GLM": {"delta": 1e-8}},
        )
        return PrivateQueryEngine(data, accountant=model, **kwargs)

    def test_accountant_string_constructs_rdp(self):
        engine = self._engines("rdp")
        assert isinstance(engine.accountant, RDPAccountant)

    def test_invalid_accountant_argument_rejected(self):
        with pytest.raises(ValidationError):
            PrivateQueryEngine(np.arange(8.0), total_budget=1.0, accountant=42)

    def test_rdp_engine_serves_more_gaussian_releases(self):
        workload = wrange(6, 64, seed=0)
        basic = self._engines("basic")
        rdp = self._engines("rdp")
        basic_plan = basic.plan(workload, mechanism="GLM")
        rdp_plan = rdp.plan(workload, mechanism="GLM")
        cap = 500

        def drain(engine, plan):
            count = 0
            while count < cap and engine.can_execute(plan, 0.05):
                engine.execute(plan, 0.05)
                count += 1
            return count

        basic_count = drain(basic, basic_plan)
        rdp_count = drain(rdp, rdp_plan)
        assert basic_count == 20  # eps-bound: 1.0 / 0.05
        assert rdp_count >= 5 * basic_count

    def test_release_metadata_records_model_and_realized(self):
        engine = self._engines("rdp")
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        first = engine.execute(plan, 0.05)
        second = engine.execute(plan, 0.05)
        assert first.metadata["accountant"] == "rdp"
        assert first.metadata["realized"]["delta"] == 1e-6
        assert first.metadata["realized"]["epsilon"] > 0.0
        assert second.metadata["realized"]["epsilon"] > first.metadata["realized"]["epsilon"]
        # The audit trail mirrors the live ledger after the last charge.
        assert second.metadata["realized"]["epsilon"] == engine.accountant.spent_epsilon

    def test_loop_and_batch_audit_metadata_identical_under_rdp(self):
        workload = wrange(6, 64, seed=0)
        loop_engine = self._engines("rdp")
        batch_engine = self._engines("rdp")
        loop_plan = loop_engine.plan(workload, mechanism="GLM")
        batch_plan = batch_engine.plan(workload, mechanism="GLM")
        epsilons = [0.05, 0.1, 0.05]
        loop = [loop_engine.execute(loop_plan, eps) for eps in epsilons]
        batch = batch_engine.execute_many([(batch_plan, eps) for eps in epsilons])
        assert loop_engine.spent_budget == batch_engine.spent_budget
        for loop_release, batch_release in zip(loop, batch):
            assert loop_release.metadata == batch_release.metadata
            assert loop_release.epsilon == batch_release.epsilon
            assert loop_release.delta == batch_release.delta

    def test_batch_rollback_restores_rdp_curve(self):
        engine = self._engines("rdp")
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        curve_before = np.array(engine.accountant.rdp_curve, copy=True)

        def boom(*args, **kwargs):
            raise RuntimeError("mid-batch failure")

        compiled = plan.compile()
        original = compiled.answer_many
        compiled.answer_many = boom
        try:
            with pytest.raises(RuntimeError):
                engine.execute_many([(plan, 0.05), (plan, 0.05)])
        finally:
            compiled.answer_many = original
        assert np.array_equal(engine.accountant.rdp_curve, curve_before)
        assert engine.spent_budget == 0.0
        assert engine.releases == []


class TestExplainBudget:
    def test_explain_reports_releases_per_budget(self):
        engine = PrivateQueryEngine(
            np.arange(64.0), total_budget=1.0, delta=1e-6, seed=0,
            mechanism_kwargs={"GLM": {"delta": 1e-8}},
        )
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="GLM")
        report = plan.explain(epsilon=0.05, budget=1.0, budget_delta=1e-6)
        assert "releases/budget" in report
        assert "basic x20" in report
        import re

        match = re.search(r"rdp x(\d+)", report)
        assert match is not None and int(match.group(1)) >= 100

    def test_pure_plan_reports_pure_and_rdp_na_without_delta(self):
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        report = plan.explain(epsilon=0.1, budget=1.0)
        assert "pure x10" in report
        assert "rdp n/a" in report

    def test_pure_plan_with_delta_budget_gets_rdp_count(self):
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        report = plan.explain(epsilon=0.01, budget=1.0, budget_delta=1e-6)
        import re

        match = re.search(r"rdp x(\d+)", report)
        # With a delta budget the comparison column is basic composition
        # (which equals pure counting for delta-free releases).
        assert "basic x100" in report
        assert match is not None and int(match.group(1)) > 100

    def test_no_budget_no_line(self):
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        assert "releases/budget" not in plan.explain(epsilon=0.1)

    @pytest.mark.parametrize("bad_delta", [-0.5, 1.0, 2.0])
    def test_malformed_budget_delta_raises(self, bad_delta):
        # A bad budget_delta must raise like any other explain parameter,
        # not be rendered as an "n/a" capacity column.
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        with pytest.raises(PrivacyBudgetError):
            plan.explain(epsilon=0.1, budget=1.0, budget_delta=bad_delta)
        with pytest.raises(ValidationError):
            plan.explain(epsilon=0.1, budget=-1.0, budget_delta=1e-6)

    def test_budget_delta_without_budget_raises(self):
        # A lone budget_delta would otherwise be silently dropped (no
        # capacity line is rendered without a budget).
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
        plan = engine.plan(wrange(6, 64, seed=0), mechanism="LM")
        with pytest.raises(ValidationError, match="without budget"):
            plan.explain(epsilon=0.1, budget_delta=1e-6)
