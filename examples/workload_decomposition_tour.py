"""A tour of the workload decomposition machinery and the Section-4 bounds.

Shows what `decompose_workload` actually produces: the factors B and L,
the scale/sensitivity accounting of Lemma 1, the effect of the rank
parameter (Figure 3's story), and how the fitted error compares with the
Lemma-3 upper bound and the Hardt-Talwar lower bound.

Run:  python examples/workload_decomposition_tour.py
"""

import numpy as np

from repro import decompose_workload, hardt_talwar_lower_bound, lrm_error_upper_bound
from repro.workloads import wrelated


def main():
    epsilon = 1.0
    workload = wrelated(m=24, n=128, s=4, seed=3)
    w = workload.matrix
    print(f"workload: {workload}, rank {workload.rank}")
    print()

    # --- Decompose at the recommended rank (1.2 x rank). -----------------
    dec = decompose_workload(w, rank_ratio=1.2)
    print(f"decomposition rank r = {dec.rank}")
    print(f"  residual ||W - BL||_F   = {dec.residual_norm:.3e}")
    print(f"  scale  Phi = tr(B^T B)  = {dec.scale:.4g}")
    print(f"  sensitivity Delta(L)    = {dec.sensitivity:.6f}  (constraint boundary)")
    print(f"  Lemma-1 expected SSE    = {dec.expected_noise_error(epsilon):.4g} / eps^2")
    print()

    # --- Figure 3 in miniature: sweep the rank. ---------------------------
    print("rank sweep (Figure 3's shape: bad below rank(W), flat above):")
    for rank in (2, 3, 4, 5, 8, 12):
        sweep = decompose_workload(w, rank=rank, max_outer=60, stall_iters=12)
        marker = "<-- rank(W)" if rank == workload.rank else ""
        print(
            f"  r={rank:>2}: noise SSE {sweep.expected_noise_error(epsilon):>12.4g}"
            f"  residual {sweep.residual_norm:>10.3e} {marker}"
        )
    print()

    # --- Section 4.1: sandwich the fitted error between the bounds. ------
    upper = lrm_error_upper_bound(workload.singular_values, epsilon)
    lower = hardt_talwar_lower_bound(workload.singular_values, epsilon)
    fitted = dec.expected_noise_error(epsilon)
    print(f"Hardt-Talwar lower bound (any eps-DP mechanism): {lower:.4g}")
    print(f"LRM fitted expected error:                        {fitted:.4g}")
    print(f"Lemma-3 upper bound (SVD decomposition):          {upper:.4g}")


if __name__ == "__main__":
    main()
