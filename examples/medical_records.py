"""The paper's Section-1 medical-records example, end to end.

Reconstructs the running example: HIV+ patient counts per US state, a
batch of three correlated queries with q1 = q2 + q3, and the accuracy of
the strategies the introduction walks through — noise-on-queries (NOQ),
noise-on-data (NOD), the hand-built {q2, q3} strategy, and the strategy
LRM discovers automatically.

Run:  python examples/medical_records.py
"""

import numpy as np

from repro import LowRankMechanism, Workload
from repro.analysis.theory import (
    decomposition_expected_error,
    noise_on_data_error,
    noise_on_results_error,
)

STATES = ["NY", "NJ", "CA", "WA"]
#: Exact unit counts from Figure 1(b) of the paper.
COUNTS = np.array([82_700.0, 19_000.0, 67_000.0, 5_900.0])


def main():
    epsilon = 1.0
    # q1 = total over four states; q2 = NY + NJ; q3 = CA + WA.
    workload = Workload(
        [
            [1.0, 1.0, 1.0, 1.0],
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        ],
        name="hiv-batch",
    )
    print("queries: q1 = all four states, q2 = NY+NJ, q3 = CA+WA (q1 = q2 + q3)")
    print(f"exact answers: {workload.answer(COUNTS)}")
    print(f"batch sensitivity: {workload.sensitivity} (a record affects q1 and one of q2/q3)")
    print()

    # The introduction's accounting of the three strategies (eps = 1):
    print(f"NOQ (noise on query results) total expected SSE: "
          f"{noise_on_results_error(workload.matrix, epsilon):.0f} / eps^2")
    print(f"NOD (noise on unit counts)   total expected SSE: "
          f"{noise_on_data_error(workload.matrix, epsilon):.0f} / eps^2")

    # Hand-built strategy from the text: answer q2, q3 and set q1 = q2 + q3.
    b_hand = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
    l_hand = workload.matrix[1:]
    hand_error = decomposition_expected_error(b_hand, l_hand, epsilon)
    print(f"hand-built {{q2, q3}} strategy  total expected SSE: {hand_error:.0f} / eps^2")

    # LRM discovers a strategy at least as good automatically.
    lrm = LowRankMechanism(
        rank=2, max_outer=400, max_inner=10, nesterov_iters=100, stall_iters=60
    ).fit(workload)
    print(f"LRM-discovered strategy      total expected SSE: "
          f"{lrm.expected_squared_error(epsilon):.2f} / eps^2")
    print()
    print("LRM's strategy factor L (each column's L1 norm <= 1):")
    print(np.round(lrm.decomposition.l, 3))
    print()

    # One actual private release.
    noisy = lrm.answer(COUNTS, epsilon, rng=7)
    for name, exact_value, noisy_value in zip(
        ["q1", "q2", "q3"], workload.answer(COUNTS), noisy
    ):
        print(f"{name}: exact {exact_value:>9.0f}   eps-DP release {noisy_value:>10.1f}")


if __name__ == "__main__":
    main()
