"""Large-domain range analytics: a domain the dense path cannot represent.

A telemetry service keeps per-minute event counts for 45 days — a domain of
n = 65,536 cells. Its analysts want running totals (prefix sums), one-hour
moving windows, and a small dashboard of correlated aggregates, under pure
eps-DP. The dense workload matrix for the prefix batch alone would hold
65,536^2 entries (~34 GB) — it cannot reasonably exist. The implicit
operator layer (PR 4) answers, fits and releases it in a few hundred
megabytes:

* the structured workloads are operator-backed (two index vectors each);
* the Low-Rank Mechanism fit runs matvec-driven (range-finder sketch +
  compressed k x n ALM) with bounded peak memory;
* releases apply workloads as actions, so serving stays domain-linear.

The example also shows the paper's selection story at this scale: on the
full-rank prefix batch the identity strategy (LM) stays the right default,
while on a genuinely low-rank dashboard batch LRM's decomposition wins by
orders of magnitude.

Run:  PYTHONPATH=src python examples/large_domain_range_analytics.py   (~1-2 min)
"""

import time
import tracemalloc

import numpy as np

from repro.core.lrm import LowRankMechanism
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import Workload, prefix_workload, sliding_window_workload

N = 65_536  # 45 days of per-minute counters
EPSILON = 0.5
SKETCH_BUDGET = {
    "rank": 32,
    "max_outer": 8,
    "max_inner": 2,
    "nesterov_iters": 12,
    "stall_iters": 5,
}


def main():
    rng = np.random.default_rng(7)
    # Synthetic per-minute event counts: a daily cycle plus noise.
    minutes = np.arange(N)
    x = rng.poisson(40 + 25 * np.sin(2 * np.pi * minutes / 1440.0)).astype(float)

    prefix = prefix_workload(N)
    windows = sliding_window_workload(N, 60)
    dense_gb = N * N * 8 / 1e9
    print(f"domain: n = {N} per-minute counters, total events {x.sum():,.0f}")
    print(
        f"prefix workload: {prefix.num_queries} queries, implicit "
        f"(dense form would be {dense_gb:.0f} GB)"
    )
    print(f"moving-window workload: {windows.num_queries} one-hour sums, implicit")
    print()

    # --- Exact answers cost O(n): one cumulative sum for all of them. ---
    start = time.perf_counter()
    running_totals = prefix.answer(x)
    print(
        f"exact prefix batch answered in {time.perf_counter() - start:.3f}s "
        f"(grand total {running_totals[-1]:,.0f})"
    )

    # --- Private running totals: LM releases through the operator action. ---
    lm = NoiseOnDataMechanism().fit(prefix)
    start = time.perf_counter()
    private_totals = lm.answer(x, EPSILON, rng=0)
    lm_empirical = float(np.mean((private_totals - running_totals) ** 2))
    print(
        f"private running totals (LM) at eps={EPSILON}: "
        f"{time.perf_counter() - start:.3f}s, per-query squared error "
        f"{lm_empirical:.3g}"
    )

    # --- One-hour moving sums ride the same machinery. ---
    hourly = NoiseOnDataMechanism().fit(windows)
    start = time.perf_counter()
    private_windows = hourly.answer(x, EPSILON, rng=1)
    print(
        f"one-hour moving sums released in {time.perf_counter() - start:.3f}s "
        f"({private_windows.size} windows; busiest hour ~{private_windows.max():,.0f} events)"
    )
    print()

    # --- The matvec-driven LRM fit runs where dense fitting cannot. ---
    tracemalloc.start()
    start = time.perf_counter()
    sketch_lrm = LowRankMechanism(**SKETCH_BUDGET).fit(prefix)
    fit_seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    decomposition = sketch_lrm.decomposition
    print(
        f"matvec-driven LRM fit on the full prefix batch: {fit_seconds:.1f}s, "
        f"peak memory {peak / 1e6:.0f} MB, rank {decomposition.rank}, "
        f"sensitivity {decomposition.sensitivity:.3f}"
    )
    print(
        "  (the prefix batch is full rank, so a rank-32 decomposition "
        "trades structural error for its tiny noise — LM above stays the "
        "right default here, exactly the paper's low-rank condition)"
    )
    print()

    # --- Where the decomposition wins: a low-rank dashboard batch. ---
    # 24 dashboard aggregates, each a +/-1 combination of 6 window
    # templates over the domain: rank 6 out of 65,536 — LRM's regime.
    template_rows = []
    for start_cell, width in (
        (0, 1440), (1440, 1440), (20160, 4320), (43200, 2880), (0, 10080), (60480, 5056)
    ):
        row = np.zeros(N)
        row[start_cell : start_cell + width] = 1.0
        template_rows.append(row)
    templates = np.stack(template_rows)
    mixing = rng.choice([-1.0, 1.0], size=(24, templates.shape[0]))
    dashboard = Workload(mixing @ templates, name="Dashboard")
    print(
        f"dashboard batch: {dashboard.num_queries} correlated aggregates, "
        f"rank {dashboard.rank} over n = {N}"
    )

    start = time.perf_counter()
    dash_lrm = LowRankMechanism(
        max_outer=12, max_inner=2, nesterov_iters=12, stall_iters=5
    ).fit(dashboard)
    print(f"LRM fit: {time.perf_counter() - start:.1f}s")
    dash_lm = NoiseOnDataMechanism().fit(dashboard)
    lrm_error = dash_lrm.average_expected_error(EPSILON)
    lm_error = dash_lm.average_expected_error(EPSILON)
    exact = dashboard.answer(x)
    private = dash_lrm.answer(x, EPSILON, rng=2)
    empirical = float(np.mean((private - exact) ** 2))
    print(
        f"per-query expected squared error at eps={EPSILON}: "
        f"LRM {lrm_error:.3g} vs LM {lm_error:.3g} "
        f"({lm_error / lrm_error:,.0f}x in LRM's favour; one release "
        f"measured {empirical:.3g})"
    )


if __name__ == "__main__":
    main()
