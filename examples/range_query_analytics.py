"""Range-query analytics on the Search Logs dataset (a Figure-5 mini study).

An analyst wants private answers to a batch of random range queries over
keyword-frequency counts. This example loads the synthetic Search Logs
stand-in, merges it to a 256-bucket domain, and compares every mechanism
in the paper on the same batch — the workflow behind Figure 5.

Run:  python examples/range_query_analytics.py
"""

import numpy as np

from repro.analysis.comparison import compare_mechanisms
from repro.data import merge_to_domain, search_logs
from repro.workloads import wrange


def main():
    n, m, epsilon = 256, 48, 0.1

    # Private data: 2^16 keyword counts merged down to n buckets
    # (Section 6's domain-cardinality transform).
    x = merge_to_domain(search_logs(seed=2012), n)
    print(f"dataset: search_logs merged to {n} buckets, total count {x.sum():.0f}")

    workload = wrange(m=m, n=n, seed=0)
    print(f"workload: {m} random range queries, rank {workload.rank}")
    print()

    rows = compare_mechanisms(
        workload,
        x,
        epsilon,
        mechanisms=("MM", "LM", "WM", "HM", "LRM"),
        trials=10,
        rng=1,
        mechanism_kwargs={
            "MM": {"max_iters": 20},
            "LRM": {"max_outer": 60, "max_inner": 5, "nesterov_iters": 40, "stall_iters": 12},
        },
    )

    print(f"{'mechanism':>10} {'avg sq error':>14} {'expected':>14} {'fit (s)':>9}")
    for row in rows:
        if not row.ok:
            print(f"{row.mechanism:>10} failed: {row.failure}")
            continue
        expected = f"{row.expected_average_error:.4g}" if row.expected_average_error else "-"
        print(
            f"{row.mechanism:>10} {row.average_squared_error:>14.4g} "
            f"{expected:>14} {row.fit_seconds:>9.2f}"
        )

    best = min((r for r in rows if r.ok), key=lambda r: r.average_squared_error)
    print(f"\nmost accurate mechanism on this batch: {best.mechanism}")


if __name__ == "__main__":
    main()
