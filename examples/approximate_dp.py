"""Approximate-DP workflow: the Gaussian Low-Rank Mechanism.

The paper works in pure eps-DP (Laplace noise, L1 sensitivity); its
matrix-mechanism lineage equally supports (eps, delta)-DP with Gaussian
noise and L2 sensitivity. This example runs the L2 decomposition program,
compares Laplace-LRM, Gaussian-LRM and the Gaussian noise-on-data baseline
on the same workload, and shows persistence of the fitted mechanism (the
decomposition is the expensive part — fit once, answer forever).

Run:  python examples/approximate_dp.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    GaussianLowRankMechanism,
    GaussianNoiseOnDataMechanism,
    LowRankMechanism,
    load_fitted_lrm,
    save_fitted_lrm,
    wrelated,
)


def main():
    epsilon, delta = 0.5, 1e-6
    workload = wrelated(m=24, n=256, s=3, seed=4)
    x = np.random.default_rng(0).integers(0, 5_000, 256).astype(float)
    print(f"workload: {workload}, rank {workload.rank};  eps={epsilon}, delta={delta}")
    print()

    laplace_lrm = LowRankMechanism().fit(workload)
    gaussian_lrm = GaussianLowRankMechanism(delta=delta).fit(workload)
    gaussian_baseline = GaussianNoiseOnDataMechanism(delta=delta).fit(workload)

    print("expected per-query squared error:")
    print(f"  LRM   (Laplace, pure eps-DP):        {laplace_lrm.average_expected_error(epsilon):>12.4g}")
    print(f"  GLRM  (Gaussian, (eps,delta)-DP):    {gaussian_lrm.average_expected_error(epsilon):>12.4g}")
    print(f"  GLM   (Gaussian noise-on-data):      {gaussian_baseline.average_expected_error(epsilon):>12.4g}")
    print()

    dec = gaussian_lrm.decomposition
    print(f"GLRM decomposition: rank {dec.rank}, L2 sensitivity {dec.sensitivity:.4f}, "
          f"scale {dec.scale:.4g}")
    print()

    # Persist the fitted mechanism and answer from the restored copy.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "glrm.npz"
        save_fitted_lrm(gaussian_lrm, path)
        restored = load_fitted_lrm(path)
        original_answer = gaussian_lrm.answer(x, epsilon, rng=7)
        restored_answer = restored.answer(x, epsilon, rng=7)
        print(f"saved + restored fitted GLRM: answers identical -> "
              f"{np.allclose(original_answer, restored_answer)}")
        print(f"first 3 (eps,delta)-DP answers: {np.round(restored_answer[:3], 1)}")


if __name__ == "__main__":
    main()
