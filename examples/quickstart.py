"""Quickstart: plan once, explain the choice, execute budgeted releases.

Builds a low-rank workload, lets the engine *plan* it (fit + rank every
candidate mechanism by analytic expected error, budget-free), prints the
plan's ``explain()`` report, then *executes* the plan twice at different
epsilons under one global privacy budget — the 60-second tour of the
plan/execute API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PrivateQueryEngine, wrelated


def main():
    # 1. A batch of 32 correlated queries over 256 unit counts whose
    #    workload matrix has rank 4 (the regime LRM is built for).
    workload = wrelated(m=32, n=256, s=4, seed=0)
    print(f"workload: {workload}  rank={workload.rank}")

    # 2. Some private unit counts (e.g. patients per region), held by a
    #    budget-managed engine.
    x = np.random.default_rng(1).integers(0, 10_000, workload.domain_size).astype(float)
    engine = PrivateQueryEngine(x, total_budget=1.0, seed=2)

    # 3. PLAN: selection + fitting, no budget spent. The plan is a
    #    reusable artifact — inspect it before paying any epsilon.
    plan = engine.plan(workload, mechanism="auto")
    print()
    print(plan.explain(epsilon=0.1))
    print()

    # 4. EXECUTE: each call is one budgeted noisy release of W x. The
    #    expensive fit is paid once; releases are cheap.
    release = engine.execute(plan, epsilon=0.1)
    exact = workload.answer(x)
    print(f"first 3 answers   exact: {np.round(exact[:3], 1)}")
    print(f"first 3 answers   noisy: {np.round(release.answers[:3], 1)}")

    # A second, more accurate release from the *same* plan (the answers
    # are signed linear combinations, so no non-negativity projection).
    precise = engine.execute(plan, epsilon=0.5)
    print(f"first 3 answers  eps=.5: {np.round(precise.answers[:3], 1)}")
    print()

    # 5. How much accuracy did planning buy? Compare the chosen mechanism
    #    against the naive Laplace baseline from the same candidate table.
    by_label = {candidate.label: candidate for candidate in plan.candidates}
    chosen = by_label[plan.mechanism_label]
    lm = by_label["LM"]
    print(f"expected SSE at the probe eps  {chosen.label}: {chosen.expected_error:.4g}  "
          f"LM: {lm.expected_error:.4g}")
    print(f"{chosen.label} improves accuracy by a factor of "
          f"{lm.expected_error / chosen.expected_error:.1f}x")
    print()
    print(f"budget: spent {engine.spent_budget:.2f}, remaining {engine.remaining_budget:.2f} "
          f"across {len(engine.releases)} audited releases")


if __name__ == "__main__":
    main()
