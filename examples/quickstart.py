"""Quickstart: answer a batch of correlated linear queries under eps-DP.

Builds a low-rank workload, fits the Low-Rank Mechanism, releases a noisy
answer vector, and compares the accuracy against the naive Laplace
baseline — the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LowRankMechanism, NoiseOnDataMechanism, wrelated


def main():
    # 1. A batch of 32 correlated queries over 256 unit counts whose
    #    workload matrix has rank 4 (the regime LRM is built for).
    workload = wrelated(m=32, n=256, s=4, seed=0)
    print(f"workload: {workload}  rank={workload.rank}")

    # 2. Some private unit counts (e.g. patients per region).
    x = np.random.default_rng(1).integers(0, 10_000, workload.domain_size).astype(float)

    # 3. Fit LRM (decomposes W = B L, one-off per workload) and release.
    epsilon = 0.1
    lrm = LowRankMechanism().fit(workload)
    noisy = lrm.answer(x, epsilon, rng=2)
    exact = workload.answer(x)
    print(f"first 3 answers   exact: {np.round(exact[:3], 1)}")
    print(f"first 3 answers   noisy: {np.round(noisy[:3], 1)}")

    # 4. How much accuracy does the decomposition buy? Compare expected
    #    per-query squared error against the Laplace-on-data baseline.
    lm = NoiseOnDataMechanism().fit(workload)
    lrm_error = lrm.average_expected_error(epsilon)
    lm_error = lm.average_expected_error(epsilon)
    print(f"expected per-query squared error  LRM: {lrm_error:.4g}  LM: {lm_error:.4g}")
    print(f"LRM improves accuracy by a factor of {lm_error / lrm_error:.1f}x")


if __name__ == "__main__":
    main()
