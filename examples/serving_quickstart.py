"""The serving tier in five minutes: plans on disk to releases on a socket.

The deployment shape of the engine, end to end and in one process tree:

1. an offline *planning* step fits two workloads and saves the plans to a
   directory (`.plan.npz` — exactly what a production fleet would ship),
2. a :class:`~repro.serving.server.PlanService` stages those plans into
   shared memory once and spawns worker processes that map the read-only
   `(L, B)` factors zero-copy,
3. a burst of concurrent ``execute`` requests arrives over the TCP
   JSON-lines front-end and the micro-batching coalescer folds them into
   atomic ``execute_many`` batches — one ledger transaction, one noise
   draw and one worker round-trip per *batch*,
4. every tenant's budget lives in its own durable ledger under
   ``ledger_root``; after a graceful shutdown the ledger *replays* to
   exactly the budget the service reported.

The CLI equivalent of steps 2-3 is::

    repro serve --plans plans/ --ledger-root ledgers/ \\
        --data counts.npy --budget 5.0 --workers 2

Run:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.histogram import DomainMapper, histogram_from_records
from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.privacy.ledger import inspect_ledger
from repro.serving import AsyncServiceClient, PlanService, ServiceConfig, ServiceError


def stage_plans(plans_dir):
    """Offline planning: fit the workloads once, ship the plans as files."""
    rng = np.random.default_rng(7)
    ages = np.clip(rng.normal(38, 18, 50_000), 0, 99)
    counts, edges = histogram_from_records(ages, bins=100, value_range=(0, 100))
    mapper = DomainMapper(edges)
    cohorts = mapper.range_workload(
        [(0, 17), (18, 24), (25, 34), (35, 44), (45, 64), (65, 99)],
        name="AgeCohorts",
    )
    bands = mapper.range_workload(
        [(18, 99), (18, 64), (65, 99), (0, 99)], name="OverlappingBands"
    )
    for name, workload in (("cohorts", cohorts), ("bands", bands)):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, Path(plans_dir) / f"{name}.plan.npz")
    return counts


async def main():
    with tempfile.TemporaryDirectory() as tmp:
        plans_dir = Path(tmp) / "plans"
        plans_dir.mkdir()
        counts = stage_plans(plans_dir)
        print(f"planned 2 workloads into {len(list(plans_dir.iterdir()))} plan files")

        # --- Boot the service: shared plans + 2 workers + TCP. -----------
        config = ServiceConfig(
            plans_dir=plans_dir,
            ledger_root=Path(tmp) / "ledgers",
            data=counts,
            total_epsilon=5.0,
            workers=2,
            max_batch=32,     # coalesce up to 32 requests per batch
            max_wait=0.002,   # ... or whatever arrives within 2 ms
        )
        service = PlanService(config)
        host, port = await service.start()
        print(f"service up on {host}:{port} with {config.workers} workers")
        client = await AsyncServiceClient.connect(host, port)

        # --- Introspection costs no budget. ------------------------------
        plans = (await client.request({"op": "plan"}))["plans"]
        print(f"served plans: {[p['name'] for p in plans]}")
        explain = (await client.request(
            {"op": "explain", "plan": "cohorts", "epsilon": 0.1}
        ))["explain"]
        print("explain('cohorts') first line:", explain.splitlines()[0])
        print()

        # --- A single release, with post-processing switches. ------------
        release = await client.execute(
            "acme", "cohorts", 0.1, non_negative=True, integral=True
        )
        print(f"one release: mechanism={release['mechanism']} "
              f"eps={release['epsilon']} values={release['values']}")

        # --- A concurrent burst: this is what the coalescer is for. ------
        # 64 simultaneous requests from one tenant against one plan fold
        # into a handful of execute_many batches — one atomic ledger
        # transaction and one vectorised noise draw per batch.
        stats = service.coalescer
        batches_before = stats.batches_flushed
        start = time.perf_counter()
        await asyncio.gather(
            *[client.execute("acme", "bands", 0.01) for _ in range(64)]
        )
        elapsed = time.perf_counter() - start
        batches = stats.batches_flushed - batches_before
        print(f"burst: 64 releases in {elapsed * 1e3:.1f} ms "
              f"({64 / elapsed:,.0f} releases/sec), coalesced into "
              f"{batches} batches (mean batch {64 / batches:.1f})")
        print()

        # --- Budgets are per tenant; isolation is structural. ------------
        acme = await client.budget("acme")
        rival = await client.budget("rival")
        print(f"acme budget: spent {acme['spent_epsilon']:.2f} of "
              f"{acme['total_epsilon']:.2f}; rival untouched at "
              f"{rival['spent_epsilon']:.2f}")
        try:
            await client.execute("acme", "bands", 100.0)
        except ServiceError as exc:
            print(f"overdraft refused at the ledger: {exc.kind}")
        print()

        # --- Graceful drain, then audit the durable ledger. --------------
        await client.close()
        await service.shutdown()
        ledger = Path(tmp) / "ledgers" / "acme.journal"
        replayed = inspect_ledger(ledger)
        print(f"shutdown drained; {ledger.name} replays to spent "
              f"eps={replayed['spent_epsilon']:.2f} over "
              f"{replayed['committed']} committed transactions "
              f"(matches served budget: {replayed['spent_epsilon'] == acme['spent_epsilon']})")


if __name__ == "__main__":
    asyncio.run(main())
