"""The serving tier in five minutes: plans on disk to releases on a socket.

The deployment shape of the engine, end to end and in one process tree:

1. an offline *planning* step fits two workloads and saves the plans to a
   directory (`.plan.npz` — exactly what a production fleet would ship),
2. a :class:`~repro.serving.server.PlanService` stages those plans into
   shared memory once and spawns worker processes that map the read-only
   `(L, B)` factors zero-copy,
3. a burst of concurrent ``execute`` requests arrives over the TCP
   JSON-lines front-end and the micro-batching coalescer folds them into
   atomic ``execute_many`` batches — one ledger transaction, one noise
   draw and one worker round-trip per *batch*,
4. every tenant's budget lives in its own durable ledger under
   ``ledger_root``; after a graceful shutdown the ledger *replays* to
   exactly the budget the service reported,
5. a **chaos drill** closes the loop: kill a worker process live and watch
   the supervisor respawn it (the ``health`` op narrates), then hot-reload
   a brand-new plan into the running service without dropping a request,
6. an **exactly-once drill**: every ``execute`` carries an idempotency key
   (auto-generated unless you pass one), so retrying after an ambiguous
   failure — even across a worker kill — replays the stored release
   byte-for-byte from the durable result journal with zero extra charge.

The CLI equivalent of steps 2-3 is::

    repro serve --plans plans/ --ledger-root ledgers/ \\
        --data counts.npy --budget 5.0 --workers 2

Run:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import asyncio
import json
import os
import signal
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.histogram import DomainMapper, histogram_from_records
from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.privacy.ledger import inspect_ledger
from repro.serving import AsyncServiceClient, PlanService, ServiceConfig, ServiceError


def stage_plans(plans_dir):
    """Offline planning: fit the workloads once, ship the plans as files."""
    rng = np.random.default_rng(7)
    ages = np.clip(rng.normal(38, 18, 50_000), 0, 99)
    counts, edges = histogram_from_records(ages, bins=100, value_range=(0, 100))
    mapper = DomainMapper(edges)
    cohorts = mapper.range_workload(
        [(0, 17), (18, 24), (25, 34), (35, 44), (45, 64), (65, 99)],
        name="AgeCohorts",
    )
    bands = mapper.range_workload(
        [(18, 99), (18, 64), (65, 99), (0, 99)], name="OverlappingBands"
    )
    for name, workload in (("cohorts", cohorts), ("bands", bands)):
        plan = build_plan(workload, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, Path(plans_dir) / f"{name}.plan.npz")
    return counts, mapper


async def main():
    with tempfile.TemporaryDirectory() as tmp:
        plans_dir = Path(tmp) / "plans"
        plans_dir.mkdir()
        counts, mapper = stage_plans(plans_dir)
        print(f"planned 2 workloads into {len(list(plans_dir.iterdir()))} plan files")

        # --- Boot the service: shared plans + 2 workers + TCP. -----------
        config = ServiceConfig(
            plans_dir=plans_dir,
            ledger_root=Path(tmp) / "ledgers",
            data=counts,
            total_epsilon=5.0,
            workers=2,
            max_batch=32,     # coalesce up to 32 requests per batch
            max_wait=0.002,   # ... or whatever arrives within 2 ms
        )
        service = PlanService(config)
        host, port = await service.start()
        print(f"service up on {host}:{port} with {config.workers} workers")
        client = await AsyncServiceClient.connect(host, port)

        # --- Introspection costs no budget. ------------------------------
        plans = (await client.request({"op": "plan"}))["plans"]
        print(f"served plans: {[p['name'] for p in plans]}")
        explain = (await client.request(
            {"op": "explain", "plan": "cohorts", "epsilon": 0.1}
        ))["explain"]
        print("explain('cohorts') first line:", explain.splitlines()[0])
        print()

        # --- A single release, with post-processing switches. ------------
        release = await client.execute(
            "acme", "cohorts", 0.1, non_negative=True, integral=True
        )
        print(f"one release: mechanism={release['mechanism']} "
              f"eps={release['epsilon']} values={release['values']}")

        # --- A concurrent burst: this is what the coalescer is for. ------
        # 64 simultaneous requests from one tenant against one plan fold
        # into a handful of execute_many batches — one atomic ledger
        # transaction and one vectorised noise draw per batch.
        stats = service.coalescer
        batches_before = stats.batches_flushed
        start = time.perf_counter()
        await asyncio.gather(
            *[client.execute("acme", "bands", 0.01) for _ in range(64)]
        )
        elapsed = time.perf_counter() - start
        batches = stats.batches_flushed - batches_before
        print(f"burst: 64 releases in {elapsed * 1e3:.1f} ms "
              f"({64 / elapsed:,.0f} releases/sec), coalesced into "
              f"{batches} batches (mean batch {64 / batches:.1f})")
        print()

        # --- Budgets are per tenant; isolation is structural. ------------
        acme = await client.budget("acme")
        rival = await client.budget("rival")
        print(f"acme budget: spent {acme['spent_epsilon']:.2f} of "
              f"{acme['total_epsilon']:.2f}; rival untouched at "
              f"{rival['spent_epsilon']:.2f}")
        try:
            await client.execute("acme", "bands", 100.0)
        except ServiceError as exc:
            print(f"overdraft refused at the ledger: {exc.kind}")
        print()

        # --- Chaos drill 1: kill a worker, watch the supervisor heal. ----
        # SIGKILL one of the two workers mid-service. The supervisor
        # notices (heartbeat or the next dispatch), respawns the slot, and
        # the health op shows the service back at full strength.
        victim = service.pool.pids()[0]
        os.kill(victim, signal.SIGKILL)
        print(f"chaos: killed worker pid {victim}")
        for _ in range(100):
            health = await client.health()
            if health["restarts"] >= 1 and health["alive"] == config.workers:
                break
            await asyncio.sleep(0.1)
        print(f"recovered: {health['alive']}/{health['workers']} workers "
              f"alive after {health['restarts']} restart(s); service still "
              f"answers: {(await client.request({'op': 'ping'}))['pong']}")
        print()

        # --- Chaos drill 2: hot-reload a new plan into the live service. -
        # A third plan lands on disk and `reload` stages a fresh shared
        # segment, swaps the workers generation by generation (in-flight
        # requests keep completing), and unlinks the old segment. The CLI
        # equivalent is `repro serve --watch-plans`, which does this
        # automatically whenever the plans directory changes.
        decades = mapper.range_workload(
            [(d, d + 9) for d in range(0, 100, 10)], name="Decades"
        )
        plan = build_plan(decades, epsilon_hint=0.1, mechanism="LM")
        save_plan(plan, plans_dir / "decades.plan.npz")
        reloaded = await client.reload()
        release = await client.execute("acme", "decades", 0.05)
        print(f"hot reload: generation {reloaded['generation']} now serves "
              f"{reloaded['plans']}; new plan answered "
              f"{len(release['values'])} range queries without a restart")
        print()

        # --- Chaos drill 3: retry safely with an idempotency key. --------
        # Every execute carries a key (auto-generated UUID by default;
        # pass key=... to control it, key=False to opt out). The release
        # is journaled under that key at commit, so when a client can't
        # tell whether its request landed — timeout, dropped connection,
        # killed worker — it simply re-sends the SAME key: a duplicate is
        # answered from the durable result journal, bit-identical and
        # never charged twice. Here we even SIGKILL a worker between the
        # two sends to show the result survives worker death (it lives in
        # the ledger, not in any process's memory).
        before = (await client.budget("acme"))["spent_epsilon"]
        first = await client.execute("acme", "cohorts", 0.05, key="report-q3")
        os.kill(service.pool.pids()[0], signal.SIGKILL)  # chaos, again
        retried = await client.execute("acme", "cohorts", 0.05, key="report-q3")
        after = (await client.budget("acme"))["spent_epsilon"]
        identical = json.dumps(first, sort_keys=True) == json.dumps(
            retried, sort_keys=True
        )
        health = await client.health()
        print(f"exactly-once: retried key 'report-q3' byte-identical="
              f"{identical}, charged once ({after - before:.2f} eps for 2 "
              f"sends), dedup hits so far: {health['dedup_hits']}")
        for _ in range(100):  # let the supervisor respawn the killed slot
            health = await client.health()
            if health["alive"] == config.workers:
                break
            await asyncio.sleep(0.1)
        print()

        # --- Graceful drain, then audit the durable ledger. --------------
        acme = await client.budget("acme")  # refresh after the drills
        await client.close()
        await service.shutdown()
        ledger = Path(tmp) / "ledgers" / "acme.journal"
        replayed = inspect_ledger(ledger)
        print(f"shutdown drained; {ledger.name} replays to spent "
              f"eps={replayed['spent_epsilon']:.2f} over "
              f"{replayed['committed']} committed transactions "
              f"(matches served budget: {replayed['spent_epsilon'] == acme['spent_epsilon']})")


if __name__ == "__main__":
    asyncio.run(main())
