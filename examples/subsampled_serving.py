"""Typed costs in practice: subsampling amplification and the discrete Gaussian.

Every mechanism now prices a release as a typed :class:`NoiseCost` — the
noise family, the base (eps, delta) guarantee, the calibrated noise scale,
and (for subsampled mechanisms) the sampling rate — and that one object is
what the accountant charges, what the ledger journals, and what the release
metadata reports. This example shows the two capabilities the typed
vocabulary unlocks:

* **Subsampling amplification** — answering from a Bernoulli sample of the
  data makes each release dramatically cheaper under the RDP accountant, so
  the same budget admits orders of magnitude more releases.
* **The discrete Gaussian** — integer-valued noise for count queries with
  the same (eps, delta) guarantee as the continuous Gaussian.

Run:  python examples/subsampled_serving.py
"""

import numpy as np

from repro.engine import PrivateQueryEngine
from repro.privacy.rdp import releases_per_budget


def main():
    epsilon, delta = 0.5, 1e-7
    budget_epsilon, budget_delta = 4.0, 1e-5

    # Capacity planning first: how many identically-calibrated Gaussian
    # releases does the budget admit, with and without subsampling?
    unsampled = releases_per_budget(
        epsilon, delta, budget_epsilon, budget_delta, model="rdp"
    )
    for q in (1.0, 0.5, 0.1):
        admitted = releases_per_budget(
            epsilon, delta, budget_epsilon, budget_delta, model="rdp",
            sample_rate=q,
        )
        gain = admitted / unsampled
        print(f"  q={q:<4g} admits {admitted:>6} releases  ({gain:5.1f}x)")
    print()

    # Serve from a histogram of integral counts. The SUB mechanism thins
    # the counts with Bernoulli(q) sampling, answers through its inner
    # Gaussian mechanism, and rescales by 1/q (Horvitz-Thompson), so the
    # answers stay unbiased while each release charges the *amplified*
    # privacy cost.
    counts = np.random.default_rng(0).integers(0, 500, 64).astype(float)
    engine = PrivateQueryEngine(
        counts, total_budget=budget_epsilon, delta=budget_delta,
        seed=7, accountant="rdp",
    )
    workload = np.eye(64)

    from repro.mechanisms import SubsampledMechanism

    plain_plan = engine.plan(workload, mechanism="GNOR")
    sub_plan = engine.plan(
        workload,
        mechanism=SubsampledMechanism(inner="GNOR", sample_rate=0.1,
                                      delta=delta),
    )

    plain_release = engine.execute(plain_plan, epsilon)
    before = engine.spent_budget
    sub_release = engine.execute(sub_plan, epsilon)
    print(f"unsampled release spent: {before:.4f} epsilon")
    print(f"subsampled release spent: {engine.spent_budget - before:.4f} epsilon")
    print()

    # The typed cost travels with the release for auditing: the base
    # guarantee, the sampling rate, and the amplified pair actually charged.
    cost = sub_release.metadata["cost"]
    print("subsampled release audit record:")
    print(f"  family={cost['family']} base eps={cost['epsilon']} "
          f"delta={cost['delta']} q={cost['sample_rate']}")
    charged_eps, charged_delta = cost["charged"]
    print(f"  charged (amplified) pair: eps={charged_eps:.4g} "
          f"delta={charged_delta:g}")
    print()

    error_plain = float(np.mean((plain_release.answers - counts) ** 2))
    error_sub = float(np.mean((sub_release.answers - counts) ** 2))
    print(f"mean squared error — unsampled: {error_plain:.1f}, "
          f"subsampled (q=0.1): {error_sub:.1f}")
    print("(subsampling trades per-release accuracy for budget capacity)")
    print()

    # Discrete Gaussian: integer noise for count queries, same guarantee.
    dgnor_plan = engine.plan(workload, mechanism="DGNOR")
    dgnor_release = engine.execute(dgnor_plan, epsilon)
    integral = bool(np.array_equal(dgnor_release.answers,
                                   np.rint(dgnor_release.answers)))
    print(f"discrete-Gaussian answers integral -> {integral}; "
          f"cost family = {dgnor_release.metadata['cost']['family']}")


if __name__ == "__main__":
    main()
