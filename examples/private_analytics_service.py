"""A private analytics service end to end: raw records to audited releases.

The full adoption story in one script:

1. raw individual records (ages) are binned into unit counts,
2. an analyst phrases range queries in *value space* (years, not bins),
3. a :class:`PrivateQueryEngine` answers them under a global privacy
   budget, auto-selecting the best mechanism per workload and applying
   count post-processing,
4. the audit log shows what was released at what cost.

Run:  python examples/private_analytics_service.py
"""

import numpy as np

from repro.data.histogram import DomainMapper, histogram_from_records
from repro.engine import PrivateQueryEngine, rank_mechanisms

LRM_BUDGET = {"LRM": {"max_outer": 60, "max_inner": 5, "nesterov_iters": 40, "stall_iters": 20}}


def main():
    # --- 1. Sensitive records: ages of 50k individuals. ------------------
    rng = np.random.default_rng(7)
    ages = np.clip(rng.normal(38, 18, 50_000), 0, 99)
    counts, edges = histogram_from_records(ages, bins=100, value_range=(0, 100))
    mapper = DomainMapper(edges)
    print(f"dataset: {int(counts.sum())} individuals over {mapper.domain_size} age bins")

    # --- 2. Analyst queries in value space. ------------------------------
    cohorts = mapper.range_workload(
        [(0, 17), (18, 24), (25, 34), (35, 44), (45, 54), (55, 64), (65, 99)],
        name="AgeCohorts",
    )
    overlapping = mapper.range_workload(
        [(18, 99), (18, 64), (65, 99), (25, 54), (0, 99)],
        name="OverlappingBands",
    )
    print(f"workloads: {cohorts.name} {cohorts.shape} rank={cohorts.rank}, "
          f"{overlapping.name} {overlapping.shape} rank={overlapping.rank}")
    print()

    # --- 3. Budget-managed engine with automatic mechanism selection. ----
    engine = PrivateQueryEngine(
        counts, total_budget=1.0, mechanism_kwargs=LRM_BUDGET, seed=11
    )

    print("mechanism ranking for the overlapping bands (analytic, budget-free):")
    for choice in rank_mechanisms(overlapping, 0.4, candidates=("LM", "WM", "HM", "LRM"),
                                  mechanism_kwargs=LRM_BUDGET):
        if choice.ok:
            print(f"  {choice.label:>4}: expected SSE {choice.expected_error:>12.4g} "
                  f"(fit {choice.fit_seconds:.2f}s)")
    print()

    release_a = engine.answer_workload(
        cohorts, epsilon=0.4, non_negative=True, integral=True
    )
    release_b = engine.answer_workload(
        overlapping, epsilon=0.4, consistent=True, non_negative=True
    )

    print("age-cohort release (eps = 0.4):")
    for (low, high), exact, noisy in zip(
        cohorts.metadata["intervals"], cohorts.answer(counts), release_a.answers
    ):
        print(f"  ages {int(low):>2}-{int(high):<3}: exact {int(exact):>6}  "
              f"released {int(noisy):>6}")
    print()
    print("overlapping-bands release (eps = 0.4, consistency-projected):")
    adults, working, seniors = release_b.answers[:3]
    print(f"  adults 18+ = {adults:.1f}; working 18-64 + seniors 65+ = "
          f"{working + seniors:.1f}  (identity restored by projection)")
    print()

    # --- 4. Audit. --------------------------------------------------------
    print(f"budget: spent {engine.spent_budget:.2f}, remaining {engine.remaining_budget:.2f}")
    for index, release in enumerate(engine.releases):
        print(f"  release {index}: mechanism={release.mechanism} eps={release.epsilon} "
              f"shape={release.metadata['shape']}")


if __name__ == "__main__":
    main()
