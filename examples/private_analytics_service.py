"""A private analytics service end to end: raw records to audited releases.

The full adoption story in one script, built on the plan/execute split:

1. raw individual records (ages) are binned into unit counts,
2. an analyst phrases range queries in *value space* (years, not bins),
3. a :class:`PrivateQueryEngine` *plans* each workload (mechanism
   selection + fitting, budget-free) against a **persistent plan cache**,
   so the expensive fits survive process restarts,
4. ``explain()`` shows why the planner chose what it chose,
5. ``execute_many`` releases both workloads in one atomic, budget-audited
   batch, and the audit log shows what was released at what (eps, delta)
   cost,
6. a high-traffic serving burst releases hundreds of requests through the
   vectorised batch path (one RNG draw + one GEMM per plan group, with the
   strategy answers ``L x`` cached per data epoch), and ``set_data``
   refreshes the unit counts without ever serving stale cached answers,
7. the same Gaussian workload is served under **basic (eps, delta)
   composition** and under the **Rényi/zCDP accountant**
   (``accountant="rdp"``): the RDP ledger sustains an order of magnitude
   more releases from the identical budget, which is what makes a
   high-traffic (eps, delta) deployment viable,
8. a **crash-recovery drill**: the budget moves into a durable on-disk
   ledger (``ledger_path=...``), a worker process is killed ``kill -9``
   style in the middle of a batch commit, and reopening the ledger shows
   the realized (eps, delta) guarantee unchanged — the torn batch never
   spent, and the audit trail replays bit-identically.

Run:  python examples/private_analytics_service.py
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.histogram import DomainMapper, histogram_from_records
from repro.engine import PrivateQueryEngine

LRM_BUDGET = {"LRM": {"max_outer": 60, "max_inner": 5, "nesterov_iters": 40, "stall_iters": 20}}


def main():
    # --- 1. Sensitive records: ages of 50k individuals. ------------------
    rng = np.random.default_rng(7)
    ages = np.clip(rng.normal(38, 18, 50_000), 0, 99)
    counts, edges = histogram_from_records(ages, bins=100, value_range=(0, 100))
    mapper = DomainMapper(edges)
    print(f"dataset: {int(counts.sum())} individuals over {mapper.domain_size} age bins")

    # --- 2. Analyst queries in value space. ------------------------------
    cohorts = mapper.range_workload(
        [(0, 17), (18, 24), (25, 34), (35, 44), (45, 54), (55, 64), (65, 99)],
        name="AgeCohorts",
    )
    overlapping = mapper.range_workload(
        [(18, 99), (18, 64), (65, 99), (25, 54), (0, 99)],
        name="OverlappingBands",
    )
    print(f"workloads: {cohorts.name} {cohorts.shape} rank={cohorts.rank}, "
          f"{overlapping.name} {overlapping.shape} rank={overlapping.rank}")
    print()

    with tempfile.TemporaryDirectory() as plan_dir:
        # --- 3. Plan both workloads against a persistent cache. ----------
        # In production plan_dir would be a fixed path (or shipped between
        # machines): a restarted service reloads the fitted plans from disk
        # instead of re-running the decompositions.
        engine = PrivateQueryEngine(
            counts, total_budget=1.0, mechanism_kwargs=LRM_BUDGET, seed=11,
            plan_cache=plan_dir,
        )
        plan_a = engine.plan(cohorts)
        plan_b = engine.plan(overlapping)

        print("planner report for the overlapping bands (analytic, budget-free):")
        print(plan_b.explain(epsilon=0.4))
        print()

        # A second engine (think: the service after a restart) reuses the
        # on-disk plans — no refits.
        restarted = PrivateQueryEngine(
            counts, total_budget=1.0, seed=11, plan_cache=plan_dir,
        )
        plan_a = restarted.plan(cohorts)
        plan_b = restarted.plan(overlapping)
        print(f"restarted engine reloaded {restarted.plan_cache.disk_hits} plans "
              f"from {plan_dir!s} without refitting")
        print()

        # --- 4. One atomic, budget-audited batch of releases, each with
        # its own post-processing: integral counts for the disjoint
        # cohorts, consistency projection for the overlapping bands.
        release_a, release_b = restarted.execute_many(
            [
                (plan_a, 0.4, {"integral": True}),
                (plan_b, 0.4, {"consistent": True}),
            ],
            non_negative=True,
        )

        print("age-cohort release (eps = 0.4):")
        for (low, high), exact, noisy in zip(
            cohorts.metadata["intervals"], cohorts.answer(counts), release_a.answers
        ):
            print(f"  ages {int(low):>2}-{int(high):<3}: exact {int(exact):>6}  "
                  f"released {int(noisy):>6}")
        print()
        print("overlapping-bands release (eps = 0.4, consistency-projected):")
        adults, working, seniors = release_b.answers[:3]
        print(f"  adults 18+ = {adults:.1f}; working 18-64 + seniors 65+ = "
              f"{working + seniors:.1f}  (identity restored by projection)")
        print()

        # --- 5. High-traffic serving: the batched API. --------------------
        # A burst of analyst requests against one plan releases through the
        # vectorised multi-release path: execute_many groups requests by
        # plan, draws the whole group's noise in ONE rng call and
        # recombines with one GEMM. The plan's compiled release operator
        # caches the strategy answers L x per data epoch, so the per
        # release cost is a noise draw plus B @ (.) and nothing else.
        burst_engine = PrivateQueryEngine(
            counts, total_budget=100.0, seed=11, plan_cache=plan_dir,
        )
        burst_plan = burst_engine.plan(overlapping)
        requests = [(burst_plan, 0.05)] * 400
        start = time.perf_counter()
        burst = burst_engine.execute_many(requests)
        elapsed = time.perf_counter() - start
        compiled = burst_plan.compile()
        print(f"serving burst: {len(burst)} releases in {elapsed * 1e3:.1f} ms "
              f"({len(burst) / elapsed:,.0f} releases/sec), "
              f"strategy evaluated {compiled.strategy_evaluations}x")

        # Nightly data refresh: set_data stamps a new data epoch, so the
        # next release recomputes L x against the fresh counts — cached
        # strategy answers can never go stale.
        refreshed_ages = np.clip(rng.normal(39, 18, 52_000), 0, 99)
        refreshed_counts, _ = histogram_from_records(
            refreshed_ages, bins=100, value_range=(0, 100)
        )
        burst_engine.set_data(refreshed_counts)
        burst_engine.execute(burst_plan, 0.05)
        print(f"after set_data: strategy evaluated "
              f"{compiled.strategy_evaluations}x (epoch invalidated the cache)")
        print()

        # --- 6. Accounting: basic composition vs the RDP accountant. ------
        # Gaussian releases calibrated per-release at delta=1e-8 against a
        # (1.0, 1e-5) budget. Basic composition adds epsilons AND deltas
        # linearly; the Rényi accountant composes the underlying noise
        # curves and converts once, so the same budget serves far more
        # traffic. explain(budget=...) predicts the capacity; the drain
        # loops below realize it on live ledgers.
        glm_kwargs = {"GLM": {"delta": 1e-8}}
        basic_engine = PrivateQueryEngine(
            counts, total_budget=1.0, delta=1e-5, seed=11,
            mechanism_kwargs=glm_kwargs, plan_cache=plan_dir,
        )
        rdp_engine = PrivateQueryEngine(
            counts, total_budget=1.0, delta=1e-5, seed=11, accountant="rdp",
            mechanism_kwargs=glm_kwargs, plan_cache=plan_dir,
        )
        gaussian_plan = basic_engine.plan(cohorts, mechanism="GLM")
        print("planner capacity line (Gaussian cohorts plan, eps=0.02/release):")
        for line in gaussian_plan.explain(
            epsilon=0.02, budget=1.0, budget_delta=1e-5
        ).splitlines():
            if "releases/budget" in line:
                print(" " + line)

        def drain(engine, plan, epsilon=0.02, cap=2000):
            served = 0
            while served < cap and engine.can_execute(plan, epsilon):
                engine.execute(plan, epsilon)
                served += 1
            return served

        basic_served = drain(basic_engine, gaussian_plan)
        rdp_served = drain(rdp_engine, rdp_engine.plan(cohorts, mechanism="GLM"))
        last = rdp_engine.releases[-1]
        print(f"identical (eps=1.0, delta=1e-05) budget: basic accountant served "
              f"{basic_served} releases, RDP accountant served {rdp_served} "
              f"({rdp_served / basic_served:.0f}x)")
        print(f"RDP audit trail: accountant={last.metadata['accountant']}, realized "
              f"(eps={last.metadata['realized']['epsilon']:.3f}, "
              f"delta={last.metadata['realized']['delta']:g}) after the last release")
        print()

        # --- 7. Audit. ----------------------------------------------------
        print(f"budget: spent {restarted.spent_budget:.2f}, "
              f"remaining {restarted.remaining_budget:.2f}")
        for index, release in enumerate(restarted.releases):
            applied = [k for k, v in release.metadata["postprocess"].items() if v]
            print(f"  release {index}: mechanism={release.mechanism} eps={release.epsilon} "
                  f"delta={release.delta:g} shape={release.metadata['shape']} "
                  f"postprocess={applied or 'none'}")
        print()

        # --- 8. Crash-recovery drill: a durable budget ledger. ------------
        # Production budgets must survive crashes: an in-memory accountant
        # forgets everything spent when the process dies, and a naive
        # on-disk counter can be left half-written. ledger_path= wraps the
        # engine's accountant in a DurableAccountant: every spend is
        # journaled as a write-ahead intent + commit pair, so a spend is
        # durable exactly when its commit record is — never partially.
        ledger = str(Path(plan_dir) / "budget.journal")
        seeded = PrivateQueryEngine(
            counts.astype(float), total_budget=1.0, seed=7, ledger_path=ledger,
        )
        seeded.execute(seeded.plan(cohorts, mechanism="LM"), epsilon=0.1)
        before = seeded.accountant.spent_epsilon
        print(f"durable ledger: seeded one release, spent eps={before}")

        # A worker process picks up the same ledger and dies mid-batch —
        # a torn-write failpoint crashes it (exit 137, like kill -9)
        # halfway through writing the batch's commit record.
        worker = (
            "import numpy as np\n"
            "from repro.engine import PrivateQueryEngine\n"
            "from repro.data.histogram import DomainMapper, histogram_from_records\n"
            "from repro.testing.faults import failpoints\n"
            "import sys\n"
            "ledger, nbins = sys.argv[1], 100\n"
            "rng = np.random.default_rng(7)\n"
            "ages = np.clip(rng.normal(38, 18, 50_000), 0, 99)\n"
            "counts, edges = histogram_from_records(ages, bins=nbins, value_range=(0, 100))\n"
            "mapper = DomainMapper(edges)\n"
            "cohorts = mapper.range_workload([(0, 17), (18, 24), (25, 34), (35, 44),"
            " (45, 54), (55, 64), (65, 99)], name='AgeCohorts')\n"
            "engine = PrivateQueryEngine(counts.astype(float), total_budget=1.0,"
            " seed=7, ledger_path=ledger)\n"
            "plan = engine.plan(cohorts, mechanism='LM')\n"
            "failpoints.arm('ledger.commit.torn', 'torn')\n"
            "engine.execute_many([(plan, 0.2), (plan, 0.2)])\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", worker, ledger],
            env=env, capture_output=True, text=True,
        )
        print(f"worker killed mid-batch-commit (exit code {result.returncode})")

        # Reopen: the torn batch was never acknowledged, so it never
        # spent. The realized guarantee is exactly what it was before the
        # crash, and `ledger recover` (or any reopen) repairs the torn
        # tail the dead worker left behind.
        from repro.privacy.ledger import inspect_ledger, recover_ledger

        torn = inspect_ledger(ledger)["torn_tail_bytes"]
        recover_ledger(ledger)
        reopened = PrivateQueryEngine(
            counts.astype(float), total_budget=1.0, seed=7, ledger_path=ledger,
        )
        after = reopened.accountant.spent_epsilon
        print(f"reopened ledger: torn tail of {torn} bytes repaired, "
              f"realized eps {after} (unchanged: {after == before}), "
              f"remaining {reopened.accountant.remaining_epsilon}")


if __name__ == "__main__":
    main()
